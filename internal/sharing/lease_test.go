package sharing

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simnet"
)

// Lock leases, bounded waits, and RPC retry: the crash-tolerance layer of
// the multi-primary lock service.

// TestLockTimeoutNamesHolder: a live-but-stuck holder is NEVER reclaimed —
// the waiter gets a typed timeout naming the holder (deadlock evidence),
// and the holder's grant survives intact.
func TestLockTimeoutNamesHolder(t *testing.T) {
	r := newRig(t, 4, 2, 16)
	pid := r.seedPage(t, 0x01)
	buf := make([]byte, 8)
	for _, n := range r.nodes {
		if err := n.Read(r.clk, pid, 4096, buf); err != nil {
			t.Fatal(err)
		}
	}
	r.fusion.SetLockPolicy(LockPolicy{WaitNanos: 2_000_000, RetryNanos: 100_000})
	if err := r.fusion.Lock(r.clk, "node-1", pid, true); err != nil {
		t.Fatal(err)
	}
	err := r.fusion.Lock(r.clk, "node-0", pid, true)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	var lte *LockTimeoutError
	if !errors.As(err, &lte) {
		t.Fatalf("want *LockTimeoutError, got %T", err)
	}
	if lte.Holder != "node-1" || !lte.HolderWrite || lte.Page != pid || lte.Node != "node-0" || !lte.Write {
		t.Fatalf("timeout metadata wrong: %+v", lte)
	}
	// The live holder was not disturbed: it can still release cleanly.
	if err := r.fusion.unlockWriteClean(r.clk, "node-1", pid); err != nil {
		t.Fatal(err)
	}
	// And the lock is usable again.
	if err := r.fusion.Lock(r.clk, "node-0", pid, true); err != nil {
		t.Fatal(err)
	}
	if err := r.fusion.unlockWriteClean(r.clk, "node-0", pid); err != nil {
		t.Fatal(err)
	}
}

// TestCrossedPagePairDeadlock: two primaries lock page pairs in opposite
// order — the classic deadlock. Both waits are bounded, so both surface a
// LockTimeoutError naming the opposing holder instead of hanging forever.
func TestCrossedPagePairDeadlock(t *testing.T) {
	r := newRig(t, 4, 2, 16)
	p1 := r.seedPage(t, 0x01)
	p2 := r.seedPage(t, 0x02)
	buf := make([]byte, 8)
	for _, n := range r.nodes {
		for _, pid := range []uint64{p1, p2} {
			if err := n.Read(r.clk, pid, 4096, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.fusion.SetLockPolicy(LockPolicy{WaitNanos: 3_000_000, RetryNanos: 100_000})

	// One simclock per goroutine — clocks are not thread-safe.
	clkA, clkB := simclock.New(), simclock.New()
	clkA.AdvanceTo(r.clk.Now())
	clkB.AdvanceTo(r.clk.Now())
	var (
		ready sync.WaitGroup
		done  sync.WaitGroup
		errA  error
		errB  error
	)
	ready.Add(2)
	done.Add(2)
	go func() {
		defer done.Done()
		if err := r.fusion.Lock(clkA, "node-0", p1, true); err != nil {
			errA = fmt.Errorf("first lock: %w", err)
			ready.Done()
			return
		}
		ready.Done()
		ready.Wait() // both first locks held: the cycle exists
		errA = r.fusion.Lock(clkA, "node-0", p2, true)
	}()
	go func() {
		defer done.Done()
		if err := r.fusion.Lock(clkB, "node-1", p2, true); err != nil {
			errB = fmt.Errorf("first lock: %w", err)
			ready.Done()
			return
		}
		ready.Done()
		ready.Wait()
		errB = r.fusion.Lock(clkB, "node-1", p1, true)
	}()
	done.Wait()

	for name, err := range map[string]error{"node-0": errA, "node-1": errB} {
		if !errors.Is(err, ErrLockTimeout) {
			t.Fatalf("%s: crossed-pair deadlock must surface ErrLockTimeout, got %v", name, err)
		}
	}
	var lte *LockTimeoutError
	if errors.As(errA, &lte) && lte.Holder != "node-1" {
		t.Fatalf("node-0's timeout should name node-1, got %q", lte.Holder)
	}
	if errors.As(errB, &lte) && lte.Holder != "node-0" {
		t.Fatalf("node-1's timeout should name node-0, got %q", lte.Holder)
	}
	// Both first-acquired locks are still held by live nodes; release them.
	if err := r.fusion.unlockWriteClean(r.clk, "node-0", p1); err != nil {
		t.Fatal(err)
	}
	if err := r.fusion.unlockWriteClean(r.clk, "node-1", p2); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseReclaimWithinInterval: a DEAD holder's write lock is reclaimed by
// the first conflicting waiter within one lease interval, the durable lock
// word is cleared, and the evicted node's RPCs are rejected until it
// rejoins.
func TestLeaseReclaimWithinInterval(t *testing.T) {
	r := newRig(t, 4, 2, 16)
	lt, err := r.sw.AttachHost("lt-host").Allocate(r.clk, "lock-table", int64(r.fusion.CapacityPages())*8)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.fusion.AttachLockTable(lt); err != nil {
		t.Fatal(err)
	}
	pid := r.seedPage(t, 0x01)
	buf := make([]byte, 8)
	for _, n := range r.nodes {
		if err := n.Read(r.clk, pid, 4096, buf); err != nil {
			t.Fatal(err)
		}
	}
	// node-1 dies holding the write lock (its durable lock word is set).
	if err := r.fusion.Lock(r.clk, "node-1", pid, true); err != nil {
		t.Fatal(err)
	}
	r.fusion.CrashNode("node-1")
	if !r.fusion.NodeDead("node-1") {
		t.Fatal("CrashNode did not mark the node dead")
	}

	start := r.clk.Now()
	if err := r.fusion.Lock(r.clk, "node-0", pid, true); err != nil {
		t.Fatalf("survivor lock after crash: %v", err)
	}
	elapsed := r.clk.Now() - start
	// Within one lease interval (plus the retry-probe granularity).
	if limit := int64(DefaultLeaseNanos) + 10*DefaultLockRetryNanos; elapsed > limit {
		t.Fatalf("reclaim took %d ns, want <= %d (one lease interval)", elapsed, limit)
	}
	if err := r.fusion.unlockWriteClean(r.clk, "node-0", pid); err != nil {
		t.Fatal(err)
	}
	if rep := r.fusion.Fsck(); !rep.OK() {
		t.Fatalf("fsck after reclaim: %v", rep.Problems)
	}

	// The dead node is fenced out until it rejoins.
	if err := r.fusion.Lock(r.clk, "node-1", pid, false); !errors.Is(err, ErrNodeEvicted) {
		t.Fatalf("evicted node's RPC should be rejected, got %v", err)
	}
	if err := r.fusion.RejoinNode(r.clk, "node-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.fusion.Lock(r.clk, "node-1", pid, false); err != nil {
		t.Fatalf("rejoined node should lock again: %v", err)
	}
	if err := r.fusion.UnlockRead(r.clk, "node-1", pid); err != nil {
		t.Fatal(err)
	}
}

// rpcSweepWorkload runs a fixed two-primary record workload and returns the
// final committed bytes of every page. plan (may be nil) is installed as the
// fusion injector for the duration. Every run feeds the full event stream
// through the default invariant checkers; a run that completes its workload
// must also be violation-free (stale reads, leaked locks, leaked frames).
func rpcSweepWorkload(t *testing.T, plan *fault.Plan, rp *simnet.RetryPolicy) ([][]byte, error) {
	t.Helper()
	r := newRig(t, 4, 2, 16)
	reg := obs.New(obs.Options{})
	for _, c := range obs.DefaultCheckers() {
		reg.AddChecker(c)
	}
	r.fusion.SetObserver(reg)
	if rp != nil {
		r.fusion.SetRetryPolicy(rp)
	}
	pids := []uint64{r.seedPage(t, 0), r.seedPage(t, 0)}
	if plan != nil {
		r.fusion.SetInjector(plan)
	}
	const rounds = 10
	for round := 0; round < rounds; round++ {
		n := r.nodes[round%2]
		pid := pids[round%len(pids)]
		if err := n.ReadModifyWrite(r.clk, pid, 4096, 8, func(b []byte) { b[0]++ }); err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
	}
	if plan != nil {
		plan.Disarm()
	}
	r.fusion.SetInjector(nil)
	var out [][]byte
	for _, pid := range pids {
		buf := make([]byte, 8)
		if err := r.nodes[0].Read(r.clk, pid, 4096, buf); err != nil {
			return nil, err
		}
		out = append(out, buf)
	}
	r.fusion.SetObserver(nil)
	for _, v := range reg.Finish() {
		t.Errorf("invariant violation [%s]: %s", v.Checker, v.Detail)
	}
	return out, nil
}

// TestRPCRetryMakesDropsAndFailsSurvivable sweeps a one-shot drop AND a
// one-shot transient failure over EVERY fusion RPC of a fixed workload: with
// a retry policy installed, the workload must complete with the exact same
// committed bytes as the clean run; without one, the injected loss surfaces.
func TestRPCRetryMakesDropsAndFailsSurvivable(t *testing.T) {
	const seed = 7
	rp := &simnet.RetryPolicy{MaxAttempts: 3, BackoffNanos: 1_000, BackoffFactor: 2, JitterSeed: seed}

	want, err := rpcSweepWorkload(t, nil, rp)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	// Count the RPCs of the clean run with a trigger-less plan.
	counter := fault.NewPlan(seed)
	if _, err := rpcSweepWorkload(t, counter, rp); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	total := counter.Count(fault.OpNetSend)
	if total == 0 {
		t.Fatal("workload exercised no fusion RPCs")
	}

	for k := int64(1); k <= total; k++ {
		for _, arm := range []struct {
			name string
			plan *fault.Plan
		}{
			{"drop", fault.NewPlan(seed).DropAt(fault.OpNetSend, k)},
			{"fail", fault.NewPlan(seed).FailAt(fault.OpNetSend, k, fault.ErrInjected)},
		} {
			got, err := rpcSweepWorkload(t, arm.plan, rp)
			if err != nil {
				t.Fatalf("%s@%d: workload must survive a transient RPC loss under retry: %v", arm.name, k, err)
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("%s@%d: page %d committed bytes diverged: %x vs %x", arm.name, k, i, got[i], want[i])
				}
			}
		}
	}

	// Retry is load-bearing: the same drop with no policy surfaces an error.
	if _, err := rpcSweepWorkload(t, fault.NewPlan(seed).DropAt(fault.OpNetSend, 1), nil); err == nil {
		t.Fatal("without a retry policy the dropped RPC must surface")
	}
}
