package sharing

// Distributed page-lock machinery with leases and bounded waits.
//
// The original protocol mapped every fusion page lock onto a sync.RWMutex,
// which has two fatal properties for a shared-memory cluster: a crashed
// holder strands the lock forever, and a waiter blocks unboundedly with no
// way to distinguish contention from deadlock. This file replaces the mutex
// with an explicit holder-tracking lock:
//
//   - every grant records WHO holds the lock and WHEN (virtual time), so the
//     fusion server can walk a dead node's holdings;
//   - every holder's grant is covered by a lease, renewed by the node's RPC
//     traffic (leaseTable); a lock whose holder is marked dead AND whose
//     lease has expired is reclaimable by EvictNode;
//   - waiting is bounded: a waiter spins in virtual time (charging its own
//     clock) up to the policy deadline and then fails with a typed
//     LockTimeoutError naming the holder — the caller can tell "slow peer"
//     from "deadlock" from "dead peer".
//
// Leases here are purely virtual-time: expiry is judged against the waiting
// node's clock, which in the simulator advances in lock-step with the work
// the cluster performs. Dead-marking (CrashNode) is the safety gate — an
// alive-but-stuck holder is never reclaimed, it surfaces as a timeout.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"polarcxlmem/internal/simclock"
)

// Default lock-service parameters, virtual nanoseconds.
const (
	// DefaultLeaseNanos is the lock lease: a dead holder's locks become
	// reclaimable once its last RPC (or the grant itself) is this old.
	DefaultLeaseNanos = 2_000_000
	// DefaultLockWaitNanos bounds a Lock conflict wait before it fails with
	// ErrLockTimeout. Generous by default so heavily contended (but live)
	// workloads never see spurious timeouts; tests install tighter policies.
	DefaultLockWaitNanos = 200_000_000
	// DefaultLockRetryNanos is the virtual time a waiter charges per retry
	// probe of a contended lock (the RPC-poll granularity of the wait loop).
	DefaultLockRetryNanos = 100_000
)

// realWaitQuantum bounds the wall-clock nap between probes when waiter and
// holder are separate goroutines; a release wakes waiters sooner. Waiting
// never spends more wall time than (WaitNanos/RetryNanos) quanta.
const realWaitQuantum = 200 * time.Microsecond

// ErrLockTimeout marks a bounded lock wait that expired while the holder
// stayed live. Use errors.Is; the concrete error is a *LockTimeoutError.
var ErrLockTimeout = errors.New("sharing: page lock wait timed out")

// ErrNodeEvicted marks an RPC or lock request from a node the cluster has
// declared dead (CrashNode/EvictNode). The node must Rejoin first.
var ErrNodeEvicted = errors.New("sharing: node has been evicted")

// LockTimeoutError reports who was holding the page when the wait expired,
// so callers can distinguish contention from deadlock (the holder identity
// is what a deadlock detector needs).
type LockTimeoutError struct {
	Page        uint64
	Node        string // the waiter
	Holder      string // the (first) conflicting holder at expiry
	HolderWrite bool   // the holder held the write side
	Write       bool   // the waiter wanted the write side
	WaitNanos   int64
}

// Error implements error.
func (e *LockTimeoutError) Error() string {
	mode := "read"
	if e.Write {
		mode = "write"
	}
	hmode := "read"
	if e.HolderWrite {
		hmode = "write"
	}
	return fmt.Sprintf("sharing: %s %s-lock wait on page %d timed out after %d ns (held %s by %s)",
		e.Node, mode, e.Page, e.WaitNanos, hmode, e.Holder)
}

// Unwrap makes errors.Is(err, ErrLockTimeout) true.
func (e *LockTimeoutError) Unwrap() error { return ErrLockTimeout }

// LockPolicy parameterizes the lock service. The zero value means defaults.
type LockPolicy struct {
	LeaseNanos int64 // lock lease length
	WaitNanos  int64 // bounded conflict wait before ErrLockTimeout
	RetryNanos int64 // virtual time charged per conflict probe
}

func (p LockPolicy) withDefaults() LockPolicy {
	if p.LeaseNanos <= 0 {
		p.LeaseNanos = DefaultLeaseNanos
	}
	if p.WaitNanos <= 0 {
		p.WaitNanos = DefaultLockWaitNanos
	}
	if p.RetryNanos <= 0 {
		p.RetryNanos = DefaultLockRetryNanos
	}
	return p
}

// leaseTable tracks per-node liveness: the virtual time of each node's last
// RPC, and which nodes the cluster has declared dead.
type leaseTable struct {
	mu       sync.Mutex
	lease    int64
	lastSeen map[string]int64
	dead     map[string]bool
}

func newLeaseTable(lease int64) *leaseTable {
	return &leaseTable{lease: lease, lastSeen: make(map[string]int64), dead: make(map[string]bool)}
}

func (t *leaseTable) setLease(d int64) {
	t.mu.Lock()
	t.lease = d
	t.mu.Unlock()
}

// touch renews node's lease: any successful RPC is proof of life.
func (t *leaseTable) touch(node string, now int64) {
	t.mu.Lock()
	if now > t.lastSeen[node] {
		t.lastSeen[node] = now
	}
	t.mu.Unlock()
}

func (t *leaseTable) markDead(node string) {
	t.mu.Lock()
	t.dead[node] = true
	t.mu.Unlock()
}

// revive readmits node, restarting its lease at now.
func (t *leaseTable) revive(node string, now int64) {
	t.mu.Lock()
	delete(t.dead, node)
	if now > t.lastSeen[node] {
		t.lastSeen[node] = now
	}
	t.mu.Unlock()
}

func (t *leaseTable) isDead(node string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dead[node]
}

// expiredAt reports whether node's lease on a lock granted at grant has run
// out by virtual time now. The lease covers max(grant, last RPC): traffic
// renews it.
func (t *leaseTable) expiredAt(node string, grant, now int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	last := t.lastSeen[node]
	if grant > last {
		last = grant
	}
	return now >= last+t.lease
}

// holderInfo is one conflicting grant reported by tryAcquire.
type holderInfo struct {
	node  string
	grant int64
	write bool
}

// pageLock is a holder-tracking reader/writer lock for one DBP page.
type pageLock struct {
	mu      sync.Mutex
	writer  string
	wgrant  int64
	readers map[string]int   // node -> reentrant read count
	rgrant  map[string]int64 // node -> first-grant time
	wake    chan struct{}    // closed (and replaced) on every release
}

func newPageLock() *pageLock {
	return &pageLock{
		readers: make(map[string]int),
		rgrant:  make(map[string]int64),
		wake:    make(chan struct{}),
	}
}

// tryAcquire attempts the grant. On conflict it reports the current holders
// (sorted for determinism) and the channel a release will close.
func (l *pageLock) tryAcquire(node string, write bool, now int64) (bool, []holderInfo, chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if write {
		if l.writer == "" && len(l.readers) == 0 {
			l.writer, l.wgrant = node, now
			return true, nil, nil
		}
	} else if l.writer == "" {
		l.readers[node]++
		if l.readers[node] == 1 {
			l.rgrant[node] = now
		}
		return true, nil, nil
	}
	var hs []holderInfo
	if l.writer != "" {
		hs = append(hs, holderInfo{node: l.writer, grant: l.wgrant, write: true})
	} else {
		names := make([]string, 0, len(l.readers))
		for n := range l.readers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			hs = append(hs, holderInfo{node: n, grant: l.rgrant[n]})
		}
	}
	return false, hs, l.wake
}

// wakeLocked signals all waiters. Caller holds l.mu.
func (l *pageLock) wakeLocked() {
	close(l.wake)
	l.wake = make(chan struct{})
}

// releaseWrite drops node's write grant. Unlike sync.RWMutex, release by a
// non-holder is an error, not corruption.
func (l *pageLock) releaseWrite(node string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writer != node {
		return fmt.Errorf("sharing: write-unlock by %s but lock held by %q", node, l.writer)
	}
	l.writer, l.wgrant = "", 0
	l.wakeLocked()
	return nil
}

// releaseRead drops one of node's read grants.
func (l *pageLock) releaseRead(node string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.readers[node] == 0 {
		return fmt.Errorf("sharing: read-unlock by %s which holds no read lock", node)
	}
	l.readers[node]--
	if l.readers[node] == 0 {
		delete(l.readers, node)
		delete(l.rgrant, node)
	}
	l.wakeLocked()
	return nil
}

// forceRelease strips every grant node holds (eviction path). Reports
// whether anything was released.
func (l *pageLock) forceRelease(node string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	hit := false
	if l.writer == node {
		l.writer, l.wgrant = "", 0
		hit = true
	}
	if l.readers[node] > 0 {
		delete(l.readers, node)
		delete(l.rgrant, node)
		hit = true
	}
	if hit {
		l.wakeLocked()
	}
	return hit
}

// writerIs reports whether node currently holds the write side.
func (l *pageLock) writerIs(node string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writer != "" && l.writer == node
}

// holds reports whether node holds the lock in any mode.
func (l *pageLock) holds(node string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writer == node || l.readers[node] > 0
}

// snapshot reports the current holders (for fsck and eviction walks).
func (l *pageLock) snapshot() (writer string, readers []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	writer = l.writer
	for n := range l.readers {
		readers = append(readers, n)
	}
	sort.Strings(readers)
	return writer, readers
}

// acquirePageLock is the bounded-wait conflict loop shared by the CXL and
// RDMA fusion servers. The waiter charges its own clock pol.RetryNanos per
// probe up to pol.WaitNanos, then fails with a LockTimeoutError naming the
// holder. When a conflicting holder is marked dead and its lease has run
// out, reclaim (when non-nil) is invoked with the dead holder's name —
// EvictNode — and the acquisition retries immediately.
func acquirePageLock(clk *simclock.Clock, l *pageLock, lt *leaseTable, pol LockPolicy,
	node string, pageID uint64, write bool, reclaim func(*simclock.Clock, string) error) error {
	pol = pol.withDefaults()
	deadline := clk.Now() + pol.WaitNanos
	for {
		ok, blockers, wake := l.tryAcquire(node, write, clk.Now())
		if ok {
			return nil
		}
		reclaimed := false
		for _, b := range blockers {
			if b.node == node || lt == nil || reclaim == nil {
				continue
			}
			if lt.isDead(b.node) && lt.expiredAt(b.node, b.grant, clk.Now()) {
				if err := reclaim(clk, b.node); err != nil {
					return err
				}
				reclaimed = true
			}
		}
		if reclaimed {
			continue
		}
		now := clk.Now()
		if now >= deadline {
			e := &LockTimeoutError{Page: pageID, Node: node, Write: write, WaitNanos: pol.WaitNanos}
			if len(blockers) > 0 {
				e.Holder, e.HolderWrite = blockers[0].node, blockers[0].write
			}
			return e
		}
		step := pol.RetryNanos
		if rem := deadline - now; rem < step {
			step = rem
		}
		clk.Advance(step)
		// Nap until a release wakes us or the quantum elapses: virtual time
		// governs the deadline, wall time only paces the actual goroutines.
		select {
		case <-wake:
		case <-time.After(realWaitQuantum):
		}
	}
}
