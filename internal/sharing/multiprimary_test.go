package sharing

import (
	"bytes"
	"fmt"
	"testing"

	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/rdma"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
	"polarcxlmem/internal/txn"
	"polarcxlmem/internal/wal"
)

// mpRig is a full multi-primary deployment: N transaction engines over one
// shared DBP, one shared storage volume, one global log stream.
type mpRig struct {
	sw      *cxl.Switch
	fusion  *Fusion
	store   *storage.Store
	ws      *wal.Store
	log     *wal.Log
	engines []*txn.Engine
	pools   []*SharedPool
	clk     *simclock.Clock
}

func newMPRig(t *testing.T, nodes, dbpPages int) *mpRig {
	t.Helper()
	clk := simclock.New()
	store := storage.New(storage.Config{})
	sw := cxl.NewSwitch(cxl.Config{PoolBytes: int64(dbpPages)*page.Size + int64(nodes+1)*(1<<17)})
	fhost := sw.AttachHost("fusion")
	dbp, err := fhost.Allocate(clk, "dbp", int64(dbpPages)*page.Size)
	if err != nil {
		t.Fatal(err)
	}
	fusion := NewFusion(fhost, dbp, store)
	ws := wal.NewStore(0, 0)
	log := wal.Attach(ws)
	r := &mpRig{sw: sw, fusion: fusion, store: store, ws: ws, log: log, clk: clk}
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("mp-%d", i)
		host := sw.AttachHost(name)
		flags, err := host.Allocate(clk, name+"-flags", 1<<17)
		if err != nil {
			t.Fatal(err)
		}
		pool := NewSharedPool(name, fusion, host.NewCache(name, 4<<20), flags)
		var eng *txn.Engine
		if i == 0 {
			eng, err = txn.Bootstrap(clk, pool, log, store)
		} else {
			eng, err = txn.Attach(clk, pool, log, store)
		}
		if err != nil {
			t.Fatalf("node %d engine: %v", i, err)
		}
		// Disjoint unit-id spaces across nodes (commit markers share one
		// global log stream).
		eng.IDs().Bump(uint64(i+1) << 40)
		r.pools = append(r.pools, pool)
		r.engines = append(r.engines, eng)
	}
	return r
}

// TestMultiPrimaryEnginesShareOneTree: node 0 creates a table; both nodes
// run transactions against it; every committed row is visible from every
// node, and the shared B+tree stays valid. Writers are driven round-robin
// (never concurrently), matching the documented SMO constraint.
func TestMultiPrimaryEnginesShareOneTree(t *testing.T) {
	r := newMPRig(t, 2, 256)
	tr0, err := r.engines[0].CreateTable(r.clk, "shared")
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := r.engines[1].Table(r.clk, "shared")
	if err != nil {
		t.Fatalf("node 1 cannot see the catalog: %v", err)
	}
	trees := []interface {
		Validate(*simclock.Clock) error
	}{tr0, tr1}
	_ = trees

	// Interleaved inserts: node 0 takes evens, node 1 odds — same pages.
	const n = 400
	for k := int64(0); k < n; k++ {
		node := int(k % 2)
		eng := r.engines[node]
		tree := tr0
		if node == 1 {
			tree = tr1
		}
		tx := eng.Begin(r.clk)
		if err := tx.Insert(tree, k, []byte(fmt.Sprintf("node%d-%04d-%0100d", node, k, k))); err != nil {
			t.Fatalf("node %d insert %d: %v", node, k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Cross-visibility: each node reads the OTHER node's rows.
	for k := int64(0); k < n; k++ {
		reader := int((k + 1) % 2) // the node that did NOT write k
		tree := tr0
		if reader == 1 {
			tree = tr1
		}
		v, err := tree.Get(r.clk, k)
		want := fmt.Sprintf("node%d-%04d-%0100d", k%2, k, k)
		if err != nil || !bytes.Equal(v, []byte(want)) {
			t.Fatalf("node %d Get(%d) = %q, %v; want %q", reader, k, v, err, want)
		}
	}
	// Structural validity from both nodes' viewpoints.
	if err := tr0.Validate(r.clk); err != nil {
		t.Fatalf("node 0 validate: %v", err)
	}
	if err := tr1.Validate(r.clk); err != nil {
		t.Fatalf("node 1 validate: %v", err)
	}
	// The tree must have split (shared SMOs across nodes).
	h, err := tr0.Height(r.clk)
	if err != nil || h < 2 {
		t.Fatalf("height = %d, %v; inserts never split a shared page", h, err)
	}
}

// TestMultiPrimaryUpdateVisibility: ping-pong updates to ONE row from two
// nodes; every update must observe the previous node's committed value
// (the coherency protocol working underneath real B+tree traffic).
func TestMultiPrimaryUpdateVisibility(t *testing.T) {
	r := newMPRig(t, 2, 128)
	tr0, err := r.engines[0].CreateTable(r.clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := r.engines[1].Table(r.clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	tx := r.engines[0].Begin(r.clk)
	if err := tx.Insert(tr0, 1, []byte("v-000")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	for i := 1; i <= 40; i++ {
		node := i % 2
		eng := r.engines[node]
		tree := tr0
		if node == 1 {
			tree = tr1
		}
		tx := eng.Begin(r.clk)
		got, err := tx.Get(tree, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("v-%03d", i-1)
		if string(got) != want {
			t.Fatalf("round %d: node %d read %q, want %q (stale!)", i, node, got, want)
		}
		if err := tx.Update(tree, 1, []byte(fmt.Sprintf("v-%03d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMultiPrimaryCheckpointToStorage: FlushDirty pushes the shared pages
// to storage; a fresh single-node engine over a plain pool can then read
// everything.
func TestMultiPrimaryCheckpointToStorage(t *testing.T) {
	r := newMPRig(t, 2, 128)
	tr0, _ := r.engines[0].CreateTable(r.clk, "t")
	tx := r.engines[0].Begin(r.clk)
	for k := int64(0); k < 100; k++ {
		if err := tx.Insert(tr0, k, []byte(fmt.Sprintf("r%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if err := r.engines[0].Checkpoint(r.clk); err != nil {
		t.Fatal(err)
	}
	// Every DBP page now durable: read back raw.
	img := make([]byte, page.Size)
	if err := r.store.ReadPage(r.clk, txn.CatalogMetaID, img); err != nil {
		t.Fatalf("catalog not checkpointed: %v", err)
	}
}

// newRDMAMPRig mirrors newMPRig over the RDMA-MP baseline pools.
func newRDMAMPRig(t *testing.T, nodes, dbpPages, lbpPages int) ([]*txn.Engine, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	store := storage.New(storage.Config{})
	fusion := NewRDMAFusion(dbpPages, store)
	log := wal.Attach(wal.NewStore(0, 0))
	var engines []*txn.Engine
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("rmp-%d", i)
		pool := NewRDMASharedPool(name, fusion, rdma.NewNIC(name, 0, 0), lbpPages)
		var eng *txn.Engine
		var err error
		if i == 0 {
			eng, err = txn.Bootstrap(clk, pool, log, store)
		} else {
			eng, err = txn.Attach(clk, pool, log, store)
		}
		if err != nil {
			t.Fatalf("rdma-mp node %d: %v", i, err)
		}
		eng.IDs().Bump(uint64(i+1) << 40)
		engines = append(engines, eng)
	}
	return engines, clk
}

// TestRDMAMPEnginesShareOneTree is the engine-level baseline counterpart:
// two engines over RDMASharedPool share one B+tree with page-push
// synchronization and network invalidations.
func TestRDMAMPEnginesShareOneTree(t *testing.T) {
	engines, clk := newRDMAMPRig(t, 2, 256, 32)
	tr0, err := engines[0].CreateTable(clk, "shared")
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := engines[1].Table(clk, "shared")
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for k := int64(0); k < n; k++ {
		node := int(k % 2)
		tree := tr0
		if node == 1 {
			tree = tr1
		}
		tx := engines[node].Begin(clk)
		if err := tx.Insert(tree, k, []byte(fmt.Sprintf("rmp%d-%04d-%080d", node, k, k))); err != nil {
			t.Fatalf("node %d insert %d: %v", node, k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < n; k += 7 {
		reader := int((k + 1) % 2)
		tree := tr0
		if reader == 1 {
			tree = tr1
		}
		v, err := tree.Get(clk, k)
		want := fmt.Sprintf("rmp%d-%04d-%080d", k%2, k, k)
		if err != nil || !bytes.Equal(v, []byte(want)) {
			t.Fatalf("node %d Get(%d) = %q, %v", reader, k, v, err)
		}
	}
	if err := tr0.Validate(clk); err != nil {
		t.Fatal(err)
	}
	if err := tr1.Validate(clk); err != nil {
		t.Fatal(err)
	}
}

// TestEngineLevelSharedWriteCostGap: the same cross-node ping-pong update
// is substantially cheaper through the CXL shared pool than through the
// RDMA baseline — the fig. 11 mechanism measured through the full engine.
func TestEngineLevelSharedWriteCostGap(t *testing.T) {
	cxlNs := engPingPong(t, true)
	rdmaNs := engPingPong(t, false)
	if cxlNs >= rdmaNs {
		t.Fatalf("engine-level shared update: CXL %d ns not cheaper than RDMA %d ns", cxlNs, rdmaNs)
	}
	if float64(rdmaNs) < 1.3*float64(cxlNs) {
		t.Fatalf("gap too small: CXL %d ns vs RDMA %d ns", cxlNs, rdmaNs)
	}
}

// engPingPong measures 20 cross-node update rounds on one row.
func engPingPong(t *testing.T, useCXL bool) int64 {
	t.Helper()
	var engines []*txn.Engine
	var clk *simclock.Clock
	if useCXL {
		r := newMPRig(t, 2, 64)
		engines, clk = r.engines, r.clk
	} else {
		engines, clk = newRDMAMPRig(t, 2, 64, 16)
	}
	tr0, err := engines[0].CreateTable(clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := engines[1].Table(clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	tx := engines[0].Begin(clk)
	if err := tx.Insert(tr0, 1, []byte("v0000")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	start := clk.Now()
	for i := 1; i <= 20; i++ {
		node := i % 2
		tree := tr0
		if node == 1 {
			tree = tr1
		}
		tx := engines[node].Begin(clk)
		if err := tx.Update(tree, 1, []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return (clk.Now() - start) / 20
}

// TestRDMAMPCheckpointAndAccessors covers the baseline pool's checkpoint
// path and stat accessors through the engine.
func TestRDMAMPCheckpointAndAccessors(t *testing.T) {
	engines, clk := newRDMAMPRig(t, 2, 128, 16)
	tr0, _ := engines[0].CreateTable(clk, "t")
	tx := engines[0].Begin(clk)
	for k := int64(0); k < 60; k++ {
		if err := tx.Insert(tr0, k, []byte(fmt.Sprintf("row-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if err := engines[0].Checkpoint(clk); err != nil {
		t.Fatal(err)
	}
	// Catalog + data durable in storage now.
	pool := engines[1].Pool().(*RDMASharedPool)
	if pool.Resident() == 0 && pool.Stats().Misses == 0 {
		t.Fatal("baseline pool never used")
	}
	if pool.NIC() == nil {
		t.Fatal("NIC accessor")
	}
	// Fresh single-node verification over the checkpointed storage.
	img := make([]byte, page.Size)
	if err := func() error {
		return engines[0].Pool().(*RDMASharedPool).FlushAll(clk)
	}(); err != nil {
		t.Fatal(err)
	}
	_ = img
}
