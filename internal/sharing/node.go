package sharing

import (
	"fmt"
	"sort"
	"sync"

	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simcpu"
	"polarcxlmem/internal/simmem"
)

// pmeta is a node's local metadata for one shared page (the paper's "page
// metadata buffer" entry: data address + the CXL locations of this node's
// invalid/removal flags).
type pmeta struct {
	slot    int
	dataOff int64
}

// Interconnect is a charged transport between a node and the CXL device
// holding its flags and the DBP — cxl.HostPort.FabricPath when the node sits
// on a different leaf switch than the fusion memory box, in which case every
// flag word access pays the trunk/spine route.
type Interconnect interface {
	Use(clk *simclock.Clock, units int64)
}

// Node is one CXL multi-primary database node. It holds NO page data
// locally: records are read and written in place in the shared DBP through
// the node's CPU cache, with the software coherency protocol keeping cached
// lines honest.
type Node struct {
	name   string
	fusion *Fusion
	cache  *simcpu.Cache
	flags  *simmem.Region // this node's flag array in CXL
	dbp    *simmem.Region // the shared DBP region (same device)
	ic     Interconnect   // optional cross-switch route for flag accesses

	mu        sync.Mutex
	meta      map[uint64]*pmeta
	freeSlots []int
	nslots    int

	stats NodeStats

	// DisableCoherency turns off invalid-flag checking — the knob that
	// demonstrates the protocol is load-bearing (tests observe stale reads).
	DisableCoherency bool
}

// NodeStats counts protocol events.
type NodeStats struct {
	GetPageRPCs   int64
	Invalidations int64 // invalid flags observed and honoured
	Removals      int64 // removal flags observed (page re-fetched)
	Reads         int64
	Writes        int64
}

// NewNode builds a node over the fusion server's DBP. flagRegion is the
// node's own CXL allocation for flag words; its capacity bounds the page
// metadata buffer.
func NewNode(name string, fusion *Fusion, cache *simcpu.Cache, flagRegion *simmem.Region) *Node {
	n := &Node{
		name:   name,
		fusion: fusion,
		cache:  cache,
		flags:  flagRegion,
		dbp:    fusion.Region(),
		meta:   make(map[uint64]*pmeta),
		nslots: int(flagRegion.Size() / flagEntrySize),
	}
	for i := n.nslots - 1; i >= 0; i-- {
		n.freeSlots = append(n.freeSlots, i)
	}
	return n
}

// Name reports the node's cluster-wide identity.
func (n *Node) Name() string { return n.name }

// SetInterconnect installs the charged route between this node's host and
// the CXL device (nil = co-located, no extra cost). Set before the node
// serves traffic. Cache-mediated page accesses charge their own route via
// the cache's interconnect; this one covers the direct flag-word protocol
// accesses, which bypass the cache.
func (n *Node) SetInterconnect(ic Interconnect) { n.ic = ic }

// loadFlag reads one 8-byte flag word, paying the cross-switch route (if
// any) on top of the device access.
func (n *Node) loadFlag(clk *simclock.Clock, off int64) (uint64, error) {
	v, err := n.fusion.dev.Load64(clk, off)
	if err == nil && n.ic != nil {
		n.ic.Use(clk, 8)
	}
	return v, err
}

// storeFlag writes one 8-byte flag word, paying the cross-switch route (if
// any) on top of the device access.
func (n *Node) storeFlag(clk *simclock.Clock, off int64, v uint64) error {
	err := n.fusion.dev.Store64(clk, off, v)
	if err == nil && n.ic != nil {
		n.ic.Use(clk, 8)
	}
	return err
}

// Stats snapshots the node's protocol counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// sortedMetaIDs lists the node's mapped page ids in ascending order. Caller
// holds n.mu.
func (n *Node) sortedMetaIDs() []uint64 {
	ids := make([]uint64, 0, len(n.meta))
	for id := range n.meta {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// flagOffsets reports the absolute device offsets of slot's flag words.
func (n *Node) flagOffsets(slot int) flagAddrs {
	base := n.flags.Base() + int64(slot)*flagEntrySize
	return flagAddrs{invalid: base, removal: base + 8}
}

// ensurePage returns the local metadata for pageID, fetching the CXL
// address from the fusion server on first use or after a removal.
func (n *Node) ensurePage(clk *simclock.Clock, pageID uint64) (*pmeta, error) {
	n.mu.Lock()
	m, ok := n.meta[pageID]
	n.mu.Unlock()
	if ok {
		// Check the removal flag: the fusion server may have recycled the
		// frame.
		fa := n.flagOffsets(m.slot)
		removed, err := n.loadFlag(clk, fa.removal)
		if err != nil {
			return nil, err
		}
		if removed == 0 {
			return m, nil
		}
		n.mu.Lock()
		n.stats.Removals++
		delete(n.meta, pageID)
		n.freeSlots = append(n.freeSlots, m.slot)
		n.mu.Unlock()
	}
	n.mu.Lock()
	if len(n.freeSlots) == 0 {
		// Reclaim: scan (in page-id order, for deterministic replay) for an
		// entry whose removal flag is set — the paper's background metadata
		// recycler, run inline here.
		reclaimed := false
		for _, id := range n.sortedMetaIDs() {
			om := n.meta[id]
			fa := n.flagOffsets(om.slot)
			if rm, _ := n.fusion.dev.Load64Raw(fa.removal); rm != 0 {
				delete(n.meta, id)
				n.freeSlots = append(n.freeSlots, om.slot)
				reclaimed = true
				break
			}
		}
		// Still full: evict the lowest-id entry. Dropping local metadata is
		// always safe — the mapping is re-fetched on next use, and the
		// install-time invalidation below discards any stale cached lines.
		if !reclaimed {
			for _, id := range n.sortedMetaIDs() {
				om := n.meta[id]
				delete(n.meta, id)
				n.freeSlots = append(n.freeSlots, om.slot)
				break
			}
		}
		if len(n.freeSlots) == 0 {
			n.mu.Unlock()
			return nil, fmt.Errorf("sharing: node %s metadata buffer full (%d slots)", n.name, n.nslots)
		}
	}
	slot := n.freeSlots[len(n.freeSlots)-1]
	n.freeSlots = n.freeSlots[:len(n.freeSlots)-1]
	n.stats.GetPageRPCs++
	n.mu.Unlock()
	fa := n.flagOffsets(slot)
	// Reset our flag words before registering them.
	if err := n.storeFlag(clk, fa.invalid, 0); err != nil {
		return nil, err
	}
	if err := n.storeFlag(clk, fa.removal, 0); err != nil {
		return nil, err
	}
	off, err := n.fusion.GetPage(clk, n.name, pageID, fa)
	if err != nil {
		n.mu.Lock()
		n.freeSlots = append(n.freeSlots, slot)
		n.mu.Unlock()
		return nil, err
	}
	// Install-time invalidation: the frame may previously have held another
	// page (fusion recycle) whose lines are still in this node's cache.
	// They are clean by protocol, so the flush just discards them.
	if err := n.cache.Flush(clk, n.dbp, off, page.Size); err != nil {
		return nil, err
	}
	// The install flush discharges any invalidation this node owed on the
	// page; Aux carries the lines that survived (nonzero only when the flush
	// itself was fault-dropped, i.e. the copy is still suspect).
	resident, _ := n.cache.LinesInRange(n.dbp, off, page.Size)
	n.fusion.obsState().emit(clk.Now(), obs.EvInvalidAck, n.name, pageID, int64(resident))
	m = &pmeta{slot: slot, dataOff: off}
	n.mu.Lock()
	n.meta[pageID] = m
	n.mu.Unlock()
	return m, nil
}

// honourInvalid checks this node's invalid flag under the page lock and, if
// set, clflushes the page range (invalidating the clean cached lines) and
// clears the flag. Subsequent reads fetch the writer's lines from CXL.
func (n *Node) honourInvalid(clk *simclock.Clock, pageID uint64, m *pmeta) error {
	if n.DisableCoherency {
		return nil
	}
	fa := n.flagOffsets(m.slot)
	inv, err := n.loadFlag(clk, fa.invalid)
	if err != nil {
		return err
	}
	if inv == 0 {
		return nil
	}
	if err := n.cache.Flush(clk, n.dbp, m.dataOff, page.Size); err != nil {
		return err
	}
	if err := n.storeFlag(clk, fa.invalid, 0); err != nil {
		return err
	}
	n.mu.Lock()
	n.stats.Invalidations++
	n.mu.Unlock()
	// Aux = lines still resident after the flush: nonzero means the flush
	// was dropped and the stale copy survives — the checker keeps the page
	// suspect in that case.
	resident, _ := n.cache.LinesInRange(n.dbp, m.dataOff, page.Size)
	n.fusion.obsState().emit(clk.Now(), obs.EvInvalidAck, n.name, pageID, int64(resident))
	return nil
}

// Read copies len(buf) bytes at off within the shared page, under the
// page's read lock, through this node's CPU cache.
func (n *Node) Read(clk *simclock.Clock, pageID uint64, off int64, buf []byte) error {
	m, err := n.ensurePage(clk, pageID)
	if err != nil {
		return err
	}
	if err := n.fusion.Lock(clk, n.name, pageID, false); err != nil {
		return err
	}
	defer n.fusion.UnlockRead(clk, n.name, pageID)
	if err := n.honourInvalid(clk, pageID, m); err != nil {
		return err
	}
	n.mu.Lock()
	n.stats.Reads++
	n.mu.Unlock()
	if err := n.cache.Read(clk, n.dbp, m.dataOff+off, buf); err != nil {
		return err
	}
	n.fusion.obsState().emit(clk.Now(), obs.EvSharedRead, n.name, pageID, 0)
	return nil
}

// Write stores data at off within the shared page under the page's write
// lock: update in place through the cache, clflush the page's dirty lines
// (publication, cache-line granular), then release — which makes the fusion
// server invalidate the other active nodes.
func (n *Node) Write(clk *simclock.Clock, pageID uint64, off int64, data []byte) error {
	m, err := n.ensurePage(clk, pageID)
	if err != nil {
		return err
	}
	if err := n.fusion.Lock(clk, n.name, pageID, true); err != nil {
		return err
	}
	if err := n.honourInvalid(clk, pageID, m); err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	if err := n.cache.Write(clk, n.dbp, m.dataOff+off, data); err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	n.mu.Lock()
	n.stats.Writes++
	n.mu.Unlock()
	// clflush: only this page's resident (dirty) lines move to CXL.
	if err := n.cache.Flush(clk, n.dbp, m.dataOff, page.Size); err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	n.emitPublish(clk, pageID, m)
	return n.fusion.UnlockWrite(clk, n.name, pageID)
}

// emitPublish traces a publication clflush. Aux = dirty lines that survived
// the flush: nonzero means the publication was torn (fault-dropped), so
// peers that fetch the page may see pre-write bytes.
func (n *Node) emitPublish(clk *simclock.Clock, pageID uint64, m *pmeta) {
	o := n.fusion.obsState()
	if o == nil {
		return
	}
	_, dirty := n.cache.LinesInRange(n.dbp, m.dataOff, page.Size)
	o.emit(clk.Now(), obs.EvPublish, n.name, pageID, int64(dirty))
}

// ReadModifyWrite applies fn to len bytes at off under one write lock —
// the shape of a sysbench point-update (read the column, compute, store).
func (n *Node) ReadModifyWrite(clk *simclock.Clock, pageID uint64, off int64, length int, fn func([]byte)) error {
	m, err := n.ensurePage(clk, pageID)
	if err != nil {
		return err
	}
	if err := n.fusion.Lock(clk, n.name, pageID, true); err != nil {
		return err
	}
	if err := n.honourInvalid(clk, pageID, m); err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	buf := make([]byte, length)
	if err := n.cache.Read(clk, n.dbp, m.dataOff+off, buf); err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	n.fusion.obsState().emit(clk.Now(), obs.EvSharedRead, n.name, pageID, 0)
	fn(buf)
	if err := n.cache.Write(clk, n.dbp, m.dataOff+off, buf); err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	n.mu.Lock()
	n.stats.Writes++
	n.mu.Unlock()
	if err := n.cache.Flush(clk, n.dbp, m.dataOff, page.Size); err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	n.emitPublish(clk, pageID, m)
	return n.fusion.UnlockWrite(clk, n.name, pageID)
}
