package sharing

import (
	"bytes"
	"strings"
	"testing"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/page"
)

// Broken fixtures: every trace checker must provably fire on a protocol
// stream that really violates its invariant. The clean-run counterparts (the
// conformance suite and the RPC sweep) assert zero violations; these tests
// are the other half — a checker nobody can trip checks nothing.

// watchFusion attaches a fresh registry with one checker to the rig's fusion
// and returns a finish func that detaches and collects violations.
func watchFusion(r *rig, c obs.Checker) (finish func() []obs.Violation) {
	reg := obs.New(obs.Options{})
	reg.AddChecker(c)
	r.fusion.SetObserver(reg)
	return func() []obs.Violation {
		r.fusion.SetObserver(nil)
		return reg.Finish()
	}
}

func hasViolation(vs []obs.Violation, substr string) bool {
	for _, v := range vs {
		if strings.Contains(v.Detail, substr) {
			return true
		}
	}
	return false
}

// TestStaleReadCheckerFiresOnDisabledCoherency: a node that ignores its
// invalid flag and reads its cached copy anyway must be called out — this is
// the DisableCoherency negative control seen through the trace stream.
func TestStaleReadCheckerFiresOnDisabledCoherency(t *testing.T) {
	r := newRig(t, 8, 2, 16)
	finish := watchFusion(r, obs.NewStaleReadChecker())
	pid := r.seedPage(t, 0x11)
	a, b := r.nodes[0], r.nodes[1]
	b.DisableCoherency = true

	buf := make([]byte, 64)
	if err := b.Read(r.clk, pid, page.HeaderSize, buf); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(r.clk, pid, page.HeaderSize, bytes.Repeat([]byte{0x22}, 64)); err != nil {
		t.Fatal(err)
	}
	// b's invalid flag is set, but coherency is off: this read is stale.
	if err := b.Read(r.clk, pid, page.HeaderSize, buf); err != nil {
		t.Fatal(err)
	}
	vs := finish()
	if !hasViolation(vs, "pending invalidation") {
		t.Fatalf("stale-read checker missed the uncoherent read; violations = %v", vs)
	}
}

// TestStaleReadCheckerFiresOnTornPublish: a dropped publication clflush
// leaves dirty lines in the writer's cache, so other nodes read a torn
// image. Sweep the drop over the writer's first few Flush calls; the one
// that lands on the publication flush must produce the torn-write violation.
func TestStaleReadCheckerFiresOnTornPublish(t *testing.T) {
	found := false
	for k := int64(1); k <= 4 && !found; k++ {
		r := newRig(t, 8, 2, 16)
		finish := watchFusion(r, obs.NewStaleReadChecker())
		pid := r.seedPage(t, 0x11)
		a, b := r.nodes[0], r.nodes[1]

		buf := make([]byte, 64)
		if err := b.Read(r.clk, pid, page.HeaderSize, buf); err != nil {
			t.Fatal(err)
		}
		a.cache.SetInjector(fault.NewPlan(1).DropAt(fault.OpFlushRange, k))
		if err := a.Write(r.clk, pid, page.HeaderSize, bytes.Repeat([]byte{0x22}, 64)); err != nil {
			t.Fatal(err)
		}
		a.cache.SetInjector(nil)
		if err := b.Read(r.clk, pid, page.HeaderSize, buf); err != nil {
			t.Fatal(err)
		}
		if hasViolation(finish(), "torn write") {
			found = true
		}
	}
	if !found {
		t.Fatal("no drop position produced a torn-write violation; the publication flush is unwatched")
	}
}

// TestLockLeakCheckerFiresOnUnreleasedGrant: a client that takes a write
// lock and walks away (no release, no crash declaration) must show up as a
// leak at Finish.
func TestLockLeakCheckerFiresOnUnreleasedGrant(t *testing.T) {
	r := newRig(t, 4, 1, 16)
	finish := watchFusion(r, obs.NewLockLeakChecker())
	pid := r.seedPage(t, 0)
	buf := make([]byte, 8)
	if err := r.nodes[0].Read(r.clk, pid, page.HeaderSize, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.fusion.Lock(r.clk, "node-0", pid, true); err != nil {
		t.Fatal(err)
	}
	vs := finish()
	if !hasViolation(vs, "leaked write lock") {
		t.Fatalf("lock-leak checker missed the unreleased grant; violations = %v", vs)
	}
}

// TestLockLeakCheckerIgnoresReclaimedGrant: the converse fixture — the same
// orphaned grant is NOT a leak when the cluster formally reclaims it
// (crash + EvictNode absolve the holder).
func TestLockLeakCheckerIgnoresReclaimedGrant(t *testing.T) {
	r := newRig(t, 4, 2, 16)
	finish := watchFusion(r, obs.NewLockLeakChecker())
	pid := r.seedPage(t, 0)
	buf := make([]byte, 8)
	if err := r.nodes[1].Read(r.clk, pid, page.HeaderSize, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.fusion.Lock(r.clk, "node-1", pid, true); err != nil {
		t.Fatal(err)
	}
	r.fusion.CrashNode("node-1")
	if err := r.fusion.EvictNode(r.clk, "node-1"); err != nil {
		t.Fatal(err)
	}
	if vs := finish(); len(vs) != 0 {
		t.Fatalf("reclaimed grant flagged as a leak: %v", vs)
	}
}
