package sharing

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"polarcxlmem/internal/page"
	"polarcxlmem/internal/rdma"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
)

// RDMAFusion is the PolarDB-MP baseline's buffer-fusion server: the DBP
// lives on an RDMA-exposed memory node; nodes keep local page copies (LBP)
// and synchronize at page granularity. On a write-lock release the whole
// 16 KB page is pushed to the DBP and invalidation messages go to every
// other active node over the network (§2.2 item 4, §3.3 "Benefits").
type RDMAFusion struct {
	dbp   *rdma.Pool
	nic   *rdma.NIC // the memory/fusion node's NIC (serves invalidations)
	store *storage.Store

	mu       sync.Mutex
	pages    map[uint64]*rdmaPageState
	nextOff  int64
	free     []int64
	nodes    map[string]invalidatable
	getCalls int64

	evictMu sync.Mutex
	leases  *leaseTable
	pol     LockPolicy

	// DisableInvalidation turns off the invalidation fan-out — the knob
	// that demonstrates the baseline's coherency machinery is load-bearing.
	DisableInvalidation bool
}

// invalidatable receives invalidation deliveries (RDMANode and
// RDMASharedPool both register).
type invalidatable interface {
	dropLocal(pageID uint64)
}

type rdmaPageState struct {
	id     uint64
	off    int64
	active map[string]bool
	dirty  bool
	lk     *pageLock
}

// NewRDMAFusion builds the baseline fusion server with a DBP of
// capacityPages frames.
func NewRDMAFusion(capacityPages int, store *storage.Store) *RDMAFusion {
	return &RDMAFusion{
		dbp:    rdma.NewPool("dbp", int64(capacityPages)*page.Size),
		nic:    rdma.NewNIC("fusion", 0, 0),
		store:  store,
		pages:  make(map[uint64]*rdmaPageState),
		nodes:  make(map[string]invalidatable),
		leases: newLeaseTable(DefaultLeaseNanos),
		pol:    LockPolicy{}.withDefaults(),
	}
}

// SetLockPolicy overrides the lease / bounded-wait parameters.
func (f *RDMAFusion) SetLockPolicy(pol LockPolicy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pol = pol.withDefaults()
	f.leases.setLease(f.pol.LeaseNanos)
}

// rpcGate rejects traffic from an evicted node and renews the caller's
// lease (any served RPC is proof of life).
func (f *RDMAFusion) rpcGate(clk *simclock.Clock, node string) error {
	if f.leases.isDead(node) {
		return fmt.Errorf("sharing: node %s: %w", node, ErrNodeEvicted)
	}
	f.leases.touch(node, clk.Now())
	return nil
}

// GetCalls reports served GetPage RPCs.
func (f *RDMAFusion) GetCalls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.getCalls
}

// getPage returns the DBP offset for pageID, loading from storage on first
// use (written to the DBP through the fusion node's own NIC).
func (f *RDMAFusion) getPage(clk *simclock.Clock, node string, pageID uint64) (int64, error) {
	clk.Advance(RPCNanos)
	if err := f.rpcGate(clk, node); err != nil {
		return 0, err
	}
	f.mu.Lock()
	f.getCalls++
	ps, ok := f.pages[pageID]
	if !ok {
		var off int64
		if n := len(f.free); n > 0 {
			off = f.free[n-1]
			f.free = f.free[:n-1]
		} else if f.nextOff+page.Size <= f.dbp.Size() {
			off = f.nextOff
			f.nextOff += page.Size
		} else {
			f.mu.Unlock()
			return 0, fmt.Errorf("sharing: RDMA DBP full")
		}
		ps = &rdmaPageState{id: pageID, off: off, active: make(map[string]bool), lk: newPageLock()}
		f.pages[pageID] = ps
		f.mu.Unlock()
		img := make([]byte, page.Size)
		if err := f.store.ReadPage(clk, pageID, img); err != nil {
			f.mu.Lock()
			delete(f.pages, pageID)
			f.free = append(f.free, off)
			f.mu.Unlock()
			return 0, err
		}
		if err := f.dbp.Write(clk, f.nic, off, img); err != nil {
			return 0, err
		}
		f.mu.Lock()
	}
	ps.active[node] = true
	f.mu.Unlock()
	return ps.off, nil
}

// createPage allocates a zeroed DBP frame for a globally fresh page (the
// engine's NewPage in the multi-primary deployment).
func (f *RDMAFusion) createPage(clk *simclock.Clock, node string, pageID uint64) (int64, error) {
	clk.Advance(RPCNanos)
	if err := f.rpcGate(clk, node); err != nil {
		return 0, err
	}
	f.mu.Lock()
	if _, exists := f.pages[pageID]; exists {
		f.mu.Unlock()
		return 0, fmt.Errorf("sharing: create of existing page %d", pageID)
	}
	var off int64
	if n := len(f.free); n > 0 {
		off = f.free[n-1]
		f.free = f.free[:n-1]
	} else if f.nextOff+page.Size <= f.dbp.Size() {
		off = f.nextOff
		f.nextOff += page.Size
	} else {
		f.mu.Unlock()
		return 0, fmt.Errorf("sharing: RDMA DBP full")
	}
	ps := &rdmaPageState{id: pageID, off: off, active: map[string]bool{node: true}, dirty: true, lk: newPageLock()}
	f.pages[pageID] = ps
	f.getCalls++
	f.mu.Unlock()
	if err := f.dbp.Write(clk, f.nic, off, make([]byte, page.Size)); err != nil {
		return 0, err
	}
	return off, nil
}

// unlockWriteCleanRDMA releases an unmodified write lock: no page push, no
// invalidations.
func (f *RDMAFusion) unlockWriteCleanRDMA(clk *simclock.Clock, node string, pageID uint64) error {
	clk.Advance(RPCNanos)
	f.leases.touch(node, clk.Now())
	f.mu.Lock()
	ps := f.pages[pageID]
	f.mu.Unlock()
	if ps == nil {
		return fmt.Errorf("sharing: clean write-unlock of unknown page %d", pageID)
	}
	return ps.lk.releaseWrite(node)
}

// FlushDirty checkpoints the DBP: dirty frames are read back over the
// fusion node's NIC and written to storage.
func (f *RDMAFusion) FlushDirty(clk *simclock.Clock, barrier func(*simclock.Clock, uint64)) error {
	f.mu.Lock()
	var dirty []*rdmaPageState
	for _, ps := range f.pages {
		if ps.dirty {
			dirty = append(dirty, ps)
		}
	}
	f.mu.Unlock()
	img := make([]byte, page.Size)
	for _, ps := range dirty {
		if err := acquirePageLock(clk, ps.lk, nil, f.pol, fusionNode, ps.id, false, nil); err != nil {
			return err
		}
		err := f.dbp.Read(clk, f.nic, ps.off, img)
		if err == nil {
			if barrier != nil {
				barrier(clk, page.RawLSN(img))
			}
			err = f.store.WritePage(clk, ps.id, img)
		}
		if err == nil {
			ps.dirty = false
		}
		ps.lk.releaseRead(fusionNode)
		if err != nil {
			return err
		}
	}
	return nil
}

// Lock acquires the distributed page lock with a bounded wait. A blocker
// whose lease has lapsed after it was marked dead is evicted inline; a live
// but stuck holder surfaces as a LockTimeoutError.
func (f *RDMAFusion) Lock(clk *simclock.Clock, node string, pageID uint64, write bool) error {
	clk.Advance(RPCNanos)
	if err := f.rpcGate(clk, node); err != nil {
		return err
	}
	f.mu.Lock()
	ps, ok := f.pages[pageID]
	pol := f.pol
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("sharing: lock of unknown page %d", pageID)
	}
	return acquirePageLock(clk, ps.lk, f.leases, pol, node, pageID, write,
		func(c *simclock.Clock, dead string) error { return f.EvictNode(c, dead) })
}

// UnlockRead releases node's read lock.
func (f *RDMAFusion) UnlockRead(clk *simclock.Clock, node string, pageID uint64) error {
	clk.Advance(RPCNanos)
	f.leases.touch(node, clk.Now())
	f.mu.Lock()
	ps := f.pages[pageID]
	f.mu.Unlock()
	if ps == nil {
		return fmt.Errorf("sharing: unlock of unknown page %d", pageID)
	}
	return ps.lk.releaseRead(node)
}

// UnlockWrite releases node's write lock after the page push, then fans an
// invalidation message out to every other active node over the network.
// The releasing worker bears the fan-out latency: the paper notes the
// full-page flush plus invalidation "prolong[s] the lock release time".
func (f *RDMAFusion) UnlockWrite(clk *simclock.Clock, node string, pageID uint64) error {
	clk.Advance(RPCNanos)
	f.leases.touch(node, clk.Now())
	f.mu.Lock()
	ps := f.pages[pageID]
	var targets []invalidatable
	if ps != nil {
		ps.dirty = true
		if !f.DisableInvalidation {
			for other := range ps.active {
				if other != node {
					if peer := f.nodes[other]; peer != nil {
						targets = append(targets, peer)
					}
				}
			}
		}
	}
	f.mu.Unlock()
	if ps == nil {
		return fmt.Errorf("sharing: write-unlock of unknown page %d", pageID)
	}
	for _, peer := range targets {
		f.nic.Send(clk, 64) // invalidation message
		peer.dropLocal(pageID)
	}
	return ps.lk.releaseWrite(node)
}

// CrashNode marks node dead. Its locks stay granted until reclaimed — by an
// explicit EvictNode or lazily by the first waiter whose lease probe finds
// them expired.
func (f *RDMAFusion) CrashNode(node string) {
	f.leases.markDead(node)
}

// NodeDead reports whether node has been marked crashed/evicted.
func (f *RDMAFusion) NodeDead(node string) bool { return f.leases.isDead(node) }

// RejoinNode re-admits a previously crashed node: finish (or run) its
// eviction so no stale state survives, then revive its lease. The caller
// re-registers the node's delivery endpoint afterwards.
func (f *RDMAFusion) RejoinNode(clk *simclock.Clock, node string) error {
	if f.leases.isDead(node) {
		if err := f.EvictNode(clk, node); err != nil {
			return err
		}
	}
	f.leases.revive(node, clk.Now())
	return nil
}

// EvictNode reclaims everything the (dead) node holds. The RDMA baseline
// needs no redo: the full-page DBP push completes before a write lock can be
// released and is atomic in the model, so the DBP frame always holds either
// the pre-image or a complete pushed image — never torn bytes. An un-pushed
// modification died with the node's LBP. What survivors MAY hold is a stale
// LBP copy of a page the dead node pushed without ever fanning out
// invalidations (it crashed between push and unlock), so write-held pages
// get the invalidation fan-out the dead node still owed. Idempotent.
func (f *RDMAFusion) EvictNode(clk *simclock.Clock, node string) error {
	f.leases.markDead(node)
	f.evictMu.Lock()
	defer f.evictMu.Unlock()

	f.mu.Lock()
	ids := make([]uint64, 0, len(f.pages))
	for id := range f.pages {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		f.mu.Lock()
		ps := f.pages[id]
		f.mu.Unlock()
		if ps == nil {
			continue
		}
		if ps.lk.writerIs(node) {
			// The dead node may have pushed its image without delivering the
			// invalidations; settle its debt before freeing the lock.
			f.mu.Lock()
			var targets []invalidatable
			if !f.DisableInvalidation {
				for other := range ps.active {
					if other != node {
						if peer := f.nodes[other]; peer != nil {
							targets = append(targets, peer)
						}
					}
				}
			}
			ps.dirty = true
			f.mu.Unlock()
			for _, peer := range targets {
				f.nic.Send(clk, 64)
				peer.dropLocal(id)
			}
		}
		ps.lk.forceRelease(node)
		f.mu.Lock()
		delete(ps.active, node)
		f.mu.Unlock()
	}
	f.mu.Lock()
	delete(f.nodes, node)
	f.mu.Unlock()
	return nil
}

// RDMANode is one PolarDB-MP database node: an LBP of local page copies in
// front of the RDMA DBP.
type RDMANode struct {
	name   string
	fusion *RDMAFusion
	nic    *rdma.NIC

	mu       sync.Mutex
	lbp      map[uint64]*list.Element
	lru      *list.List // of *lbpEntry
	capacity int

	stats RDMANodeStats
}

type lbpEntry struct {
	id  uint64
	img []byte
}

// RDMANodeStats counts baseline events.
type RDMANodeStats struct {
	Hits          int64
	Misses        int64 // full-page RDMA reads
	PagePushes    int64 // full-page RDMA writes on release
	Invalidations int64 // local copies dropped
	Reads         int64
	Writes        int64
}

// NewRDMANode builds a baseline node with an LBP of capacityPages local
// copies, registered with the fusion server for invalidation delivery.
func NewRDMANode(name string, fusion *RDMAFusion, nic *rdma.NIC, capacityPages int) *RDMANode {
	n := &RDMANode{
		name:     name,
		fusion:   fusion,
		nic:      nic,
		lbp:      make(map[uint64]*list.Element),
		lru:      list.New(),
		capacity: capacityPages,
	}
	fusion.mu.Lock()
	fusion.nodes[name] = n
	fusion.mu.Unlock()
	return n
}

// Stats snapshots the node's counters.
func (n *RDMANode) Stats() RDMANodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// NIC exposes the node's NIC for bandwidth reporting.
func (n *RDMANode) NIC() *rdma.NIC { return n.nic }

// dropLocal discards the LBP copy of pageID (invalidation delivery).
func (n *RDMANode) dropLocal(pageID uint64) {
	n.mu.Lock()
	if e, ok := n.lbp[pageID]; ok {
		n.lru.Remove(e)
		delete(n.lbp, pageID)
		n.stats.Invalidations++
	}
	n.mu.Unlock()
}

// localPage returns the LBP copy of pageID, fetching the full page over
// RDMA on a miss.
func (n *RDMANode) localPage(clk *simclock.Clock, pageID uint64) (*lbpEntry, error) {
	n.mu.Lock()
	if e, ok := n.lbp[pageID]; ok {
		n.lru.MoveToFront(e)
		n.stats.Hits++
		ent := e.Value.(*lbpEntry)
		n.mu.Unlock()
		return ent, nil
	}
	n.stats.Misses++
	for len(n.lbp) >= n.capacity {
		back := n.lru.Back()
		victim := back.Value.(*lbpEntry)
		n.lru.Remove(back)
		delete(n.lbp, victim.id)
		// Clean eviction: the DBP copy is refreshed on every write-lock
		// release, so LBP copies are never the sole latest version.
	}
	n.mu.Unlock()

	off, err := n.fusion.getPage(clk, n.name, pageID)
	if err != nil {
		return nil, err
	}
	ent := &lbpEntry{id: pageID, img: make([]byte, page.Size)}
	// Full 16 KB RDMA read even if the caller needs a handful of bytes.
	if err := n.fusion.dbp.Read(clk, n.nic, off, ent.img); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.lbp[pageID] = n.lru.PushFront(ent)
	n.mu.Unlock()
	return ent, nil
}

// Read copies len(buf) bytes at off within the page under its read lock.
func (n *RDMANode) Read(clk *simclock.Clock, pageID uint64, off int64, buf []byte) error {
	if err := n.fusion.Lock(clk, n.name, pageID, false); err != nil {
		if errors.Is(err, ErrLockTimeout) || errors.Is(err, ErrNodeEvicted) {
			return err
		}
		// The page may be unknown to the fusion server until first fetch.
		if _, gerr := n.fusion.getPage(clk, n.name, pageID); gerr != nil {
			return gerr
		}
		if err := n.fusion.Lock(clk, n.name, pageID, false); err != nil {
			return err
		}
	}
	defer n.fusion.UnlockRead(clk, n.name, pageID)
	ent, err := n.localPage(clk, pageID)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(len(buf)) > page.Size {
		return fmt.Errorf("sharing: read [%d,%d) out of page bounds", off, off+int64(len(buf)))
	}
	copy(buf, ent.img[off:])
	n.mu.Lock()
	n.stats.Reads++
	n.mu.Unlock()
	return nil
}

// Write stores data at off within the page under its write lock: update the
// local copy, push the FULL page to the DBP, release (triggering network
// invalidations).
func (n *RDMANode) Write(clk *simclock.Clock, pageID uint64, off int64, data []byte) error {
	// Ensure the fusion server knows the page before locking it.
	if _, err := n.fusion.getPage(clk, n.name, pageID); err != nil {
		return err
	}
	if err := n.fusion.Lock(clk, n.name, pageID, true); err != nil {
		return err
	}
	ent, err := n.localPage(clk, pageID)
	if err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	if off < 0 || off+int64(len(data)) > page.Size {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return fmt.Errorf("sharing: write [%d,%d) out of page bounds", off, off+int64(len(data)))
	}
	copy(ent.img[off:], data)
	n.mu.Lock()
	n.stats.Writes++
	n.stats.PagePushes++
	n.mu.Unlock()
	// Full-page push before the lock can be released: write amplification
	// plus longer lock hold.
	f := n.fusion
	f.mu.Lock()
	ps := f.pages[pageID]
	f.mu.Unlock()
	if err := f.dbp.Write(clk, n.nic, ps.off, ent.img); err != nil {
		f.UnlockWrite(clk, n.name, pageID)
		return err
	}
	return f.UnlockWrite(clk, n.name, pageID)
}

// ReadModifyWrite applies fn to length bytes at off under one write lock.
func (n *RDMANode) ReadModifyWrite(clk *simclock.Clock, pageID uint64, off int64, length int, fn func([]byte)) error {
	if _, err := n.fusion.getPage(clk, n.name, pageID); err != nil {
		return err
	}
	if err := n.fusion.Lock(clk, n.name, pageID, true); err != nil {
		return err
	}
	ent, err := n.localPage(clk, pageID)
	if err != nil {
		n.fusion.UnlockWrite(clk, n.name, pageID)
		return err
	}
	buf := make([]byte, length)
	copy(buf, ent.img[off:])
	fn(buf)
	copy(ent.img[off:], buf)
	n.mu.Lock()
	n.stats.Writes++
	n.stats.PagePushes++
	n.mu.Unlock()
	f := n.fusion
	f.mu.Lock()
	ps := f.pages[pageID]
	f.mu.Unlock()
	if err := f.dbp.Write(clk, n.nic, ps.off, ent.img); err != nil {
		f.UnlockWrite(clk, n.name, pageID)
		return err
	}
	return f.UnlockWrite(clk, n.name, pageID)
}
