package sharing

import (
	"container/list"
	"fmt"
	"sync"

	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/rdma"
	"polarcxlmem/internal/simclock"
)

// RDMASharedPool implements buffer.Pool over the RDMA-MP baseline, so the
// full transaction engine runs multi-primary the PolarDB-MP way: every
// buffer miss pulls a whole 16 KB page over RDMA into a local copy, and
// every write-lock release pushes the whole page back and fans invalidation
// messages to the other nodes. The engine-level counterpart of SharedPool,
// with the same driving constraints (writers serialized across nodes).
type RDMASharedPool struct {
	node   string
	fusion *RDMAFusion
	nic    *rdma.NIC

	mu       sync.Mutex
	frames   map[uint64]*mpFrame
	lru      *list.List
	capacity int
	barrier  buffer.FlushBarrier
	stats    buffer.Stats
}

var _ buffer.Pool = (*RDMASharedPool)(nil)

type mpFrame struct {
	id   uint64
	img  []byte
	pins int
	elem *list.Element
}

// NewRDMASharedPool builds one node's engine-facing view of the RDMA DBP
// with an LBP of capacityPages local copies.
func NewRDMASharedPool(node string, fusion *RDMAFusion, nic *rdma.NIC, capacityPages int) *RDMASharedPool {
	p := &RDMASharedPool{
		node:     node,
		fusion:   fusion,
		nic:      nic,
		frames:   make(map[uint64]*mpFrame),
		lru:      list.New(),
		capacity: capacityPages,
	}
	fusion.mu.Lock()
	fusion.nodes[node] = p
	fusion.mu.Unlock()
	return p
}

// dropLocal implements invalidation delivery: a peer's write obsoleted our
// copy. Pinned frames are left in place — the holder owns the page lock, so
// a concurrent invalidation for it cannot happen; unpinned copies go.
func (p *RDMASharedPool) dropLocal(pageID uint64) {
	p.mu.Lock()
	if f, ok := p.frames[pageID]; ok && f.pins == 0 {
		p.lru.Remove(f.elem)
		delete(p.frames, pageID)
	}
	p.mu.Unlock()
}

// SetFlushBarrier implements buffer.Pool.
func (p *RDMASharedPool) SetFlushBarrier(fb buffer.FlushBarrier) { p.barrier = fb }

// Stats implements buffer.Pool.
func (p *RDMASharedPool) Stats() buffer.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Resident implements buffer.Pool: the LBP copies this node holds — the
// memory overhead the paper charges against this design.
func (p *RDMASharedPool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// NIC exposes the node's NIC for bandwidth accounting.
func (p *RDMASharedPool) NIC() *rdma.NIC { return p.nic }

// localFrame returns the LBP copy, fetching the whole page over RDMA on a
// miss. Caller must hold the page lock.
func (p *RDMASharedPool) localFrame(clk *simclock.Clock, id uint64) (*mpFrame, error) {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		f.pins++
		p.lru.MoveToFront(f.elem)
		p.stats.Hits++
		p.mu.Unlock()
		return f, nil
	}
	p.stats.Misses++
	for len(p.frames) >= p.capacity {
		evicted := false
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			f := e.Value.(*mpFrame)
			if f.pins > 0 {
				continue
			}
			p.lru.Remove(e)
			delete(p.frames, f.id)
			p.stats.Evictions++
			evicted = true
			break
		}
		if !evicted {
			p.mu.Unlock()
			return nil, fmt.Errorf("sharing: node %s LBP fully pinned", p.node)
		}
	}
	f := &mpFrame{id: id, img: make([]byte, page.Size), pins: 1}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	p.stats.RemoteReads++
	p.mu.Unlock()

	p.fusion.mu.Lock()
	ps := p.fusion.pages[id]
	p.fusion.mu.Unlock()
	if ps == nil {
		return nil, fmt.Errorf("sharing: frame for unregistered page %d", id)
	}
	if err := p.fusion.dbp.Read(clk, p.nic, ps.off, f.img); err != nil {
		return nil, err
	}
	return f, nil
}

// Get implements buffer.Pool.
func (p *RDMASharedPool) Get(clk *simclock.Clock, id uint64, mode buffer.Mode) (buffer.Frame, error) {
	if _, err := p.fusion.getPage(clk, p.node, id); err != nil {
		return nil, err
	}
	if err := p.fusion.Lock(clk, id, mode == buffer.Write); err != nil {
		return nil, err
	}
	f, err := p.localFrame(clk, id)
	if err != nil {
		if mode == buffer.Write {
			p.fusion.UnlockWrite(clk, p.node, id)
		} else {
			p.fusion.UnlockRead(clk, id)
		}
		return nil, err
	}
	return &mpBound{pool: p, clk: clk, f: f, mode: mode}, nil
}

// NewPage implements buffer.Pool: a globally fresh page.
func (p *RDMASharedPool) NewPage(clk *simclock.Clock) (buffer.Frame, error) {
	id := p.fusion.store.AllocPageID()
	if _, err := p.fusion.createPage(clk, p.node, id); err != nil {
		return nil, err
	}
	if err := p.fusion.Lock(clk, id, true); err != nil {
		return nil, err
	}
	f, err := p.localFrame(clk, id)
	if err != nil {
		p.fusion.UnlockWrite(clk, p.node, id)
		return nil, err
	}
	return &mpBound{pool: p, clk: clk, f: f, mode: buffer.Write}, nil
}

// FlushAll implements buffer.Pool: checkpointing the DBP through the fusion
// server.
func (p *RDMASharedPool) FlushAll(clk *simclock.Clock) error {
	return p.fusion.FlushDirty(clk, p.barrier)
}

// mpBound is a latched local page copy.
type mpBound struct {
	pool     *RDMASharedPool
	clk      *simclock.Clock
	f        *mpFrame
	mode     buffer.Mode
	released bool
	wrote    bool
}

func (b *mpBound) ID() uint64 { return b.f.id }

func (b *mpBound) MarkDirty() {}

func (b *mpBound) ReadAt(off int, buf []byte) error {
	if b.released {
		return fmt.Errorf("sharing: read on released mp frame %d", b.f.id)
	}
	if off < 0 || off+len(buf) > len(b.f.img) {
		return fmt.Errorf("sharing: mp read out of bounds")
	}
	copy(buf, b.f.img[off:])
	b.clk.Advance(cxl.BufferDRAMProfile().ReadCost(len(buf)))
	return nil
}

func (b *mpBound) WriteAt(off int, data []byte) error {
	if b.released {
		return fmt.Errorf("sharing: write on released mp frame %d", b.f.id)
	}
	if b.mode != buffer.Write {
		return fmt.Errorf("sharing: write to page %d under a read lock", b.f.id)
	}
	if off < 0 || off+len(data) > len(b.f.img) {
		return fmt.Errorf("sharing: mp write out of bounds")
	}
	copy(b.f.img[off:], data)
	b.clk.Advance(cxl.BufferDRAMProfile().WriteCost(len(data)))
	b.wrote = true
	return nil
}

// Release implements buffer.Frame: the PolarDB-MP release protocol — push
// the FULL page to the DBP before the lock can move, then invalidate.
func (b *mpBound) Release() error {
	if b.released {
		return fmt.Errorf("sharing: double release of mp frame %d", b.f.id)
	}
	b.released = true
	p := b.pool
	p.mu.Lock()
	b.f.pins--
	p.mu.Unlock()
	if b.mode == buffer.Write {
		if b.wrote {
			p.fusion.mu.Lock()
			ps := p.fusion.pages[b.f.id]
			p.fusion.mu.Unlock()
			if ps == nil {
				return fmt.Errorf("sharing: release of unregistered page %d", b.f.id)
			}
			p.mu.Lock()
			p.stats.RemoteWrites++
			p.mu.Unlock()
			if err := p.fusion.dbp.Write(b.clk, p.nic, ps.off, b.f.img); err != nil {
				return err
			}
			return p.fusion.UnlockWrite(b.clk, p.node, b.f.id)
		}
		return p.fusion.unlockWriteCleanRDMA(b.clk, b.f.id)
	}
	return p.fusion.UnlockRead(b.clk, b.f.id)
}
