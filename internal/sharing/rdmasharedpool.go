package sharing

import (
	"errors"
	"fmt"
	"sync/atomic"

	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/frametab"
	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/rdma"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
)

// RDMASharedPool implements buffer.Pool over the RDMA-MP baseline, so the
// full transaction engine runs multi-primary the PolarDB-MP way: every
// buffer miss pulls a whole 16 KB page over RDMA into a local copy, and
// every write-lock release pushes the whole page back and fans invalidation
// messages to the other nodes. The engine-level counterpart of SharedPool,
// with the same driving constraints (writers serialized across nodes).
//
// The local-copy cache (LBP) is a frametab table over an rdmaStore: slots
// are whole-page images fetched from the DBP, and invalidation delivery is
// the table's TakeIfIdle (pinned copies are left in place — the holder owns
// the page lock, so a concurrent invalidation for it cannot happen).
type RDMASharedPool struct {
	node   string
	fusion *RDMAFusion
	nic    *rdma.NIC

	tab     *frametab.Table
	barrier buffer.FlushBarrier
	nslots  int
	crashed atomic.Bool
	obsReg  atomic.Pointer[obs.Registry] // survives the RejoinPrimary tab rebuild
}

var (
	_ buffer.Pool    = (*RDMASharedPool)(nil)
	_ buffer.Creator = (*RDMASharedPool)(nil)
)

// rdmaStore is RDMASharedPool's frametab backend: slots are local page
// copies pulled whole from the DBP.
type rdmaStore struct {
	p *RDMASharedPool
}

// NewRDMASharedPool builds one node's engine-facing view of the RDMA DBP
// with an LBP of capacityPages local copies.
func NewRDMASharedPool(node string, fusion *RDMAFusion, nic *rdma.NIC, capacityPages int) *RDMASharedPool {
	p := &RDMASharedPool{node: node, fusion: fusion, nic: nic, nslots: capacityPages}
	p.tab = frametab.New(frametab.Config{
		Capacity: capacityPages,
		Store:    &rdmaStore{p: p},
		NotFound: storage.ErrNotFound,
	})
	fusion.mu.Lock()
	fusion.nodes[node] = p
	fusion.mu.Unlock()
	return p
}

// CrashPrimary simulates this primary failing: the fusion server marks it
// dead (locks stay granted until reclaimed) and every subsequent pool call
// fails until RejoinPrimary.
func (p *RDMASharedPool) CrashPrimary() {
	p.crashed.Store(true)
	p.fusion.CrashNode(p.node)
}

// RejoinPrimary restarts the crashed primary with an empty LBP: the fusion
// server evicts its stale state, then the node re-registers for invalidation
// delivery.
func (p *RDMASharedPool) RejoinPrimary(clk *simclock.Clock) error {
	if err := p.fusion.RejoinNode(clk, p.node); err != nil {
		return err
	}
	p.tab = frametab.New(frametab.Config{
		Capacity: p.nslots,
		Store:    &rdmaStore{p: p},
		NotFound: storage.ErrNotFound,
	})
	if reg := p.obsReg.Load(); reg != nil {
		p.tab.SetObserver(reg, "rdma/"+p.node)
	}
	p.fusion.mu.Lock()
	p.fusion.nodes[p.node] = p
	p.fusion.mu.Unlock()
	p.crashed.Store(false)
	return nil
}

// SetObserver registers this node's LBP metrics (frametab.rdma/<node>.*)
// with reg; the registration survives RejoinPrimary's table rebuild. A nil
// reg detaches.
func (p *RDMASharedPool) SetObserver(reg *obs.Registry) {
	p.obsReg.Store(reg)
	if reg == nil {
		p.tab.SetObserver(nil, "")
		return
	}
	p.tab.SetObserver(reg, "rdma/"+p.node)
}

// Crashed reports whether this primary is currently down.
func (p *RDMASharedPool) Crashed() bool { return p.crashed.Load() }

func (p *RDMASharedPool) checkAlive() error {
	if p.crashed.Load() {
		return fmt.Errorf("sharing: primary %s crashed: %w", p.node, ErrNodeEvicted)
	}
	return nil
}

// fetch pulls page id's current image from the DBP over RDMA. The caller
// must hold the page lock, so the image cannot move underneath the read.
func (s *rdmaStore) fetch(clk *simclock.Clock, id uint64) ([]byte, error) {
	p := s.p
	p.tab.Counters.RemoteReads.Add(1)
	p.fusion.mu.Lock()
	ps := p.fusion.pages[id]
	p.fusion.mu.Unlock()
	if ps == nil {
		return nil, fmt.Errorf("sharing: frame for unregistered page %d", id)
	}
	img := make([]byte, page.Size)
	if err := p.fusion.dbp.Read(clk, p.nic, ps.off, img); err != nil {
		return nil, err
	}
	return img, nil
}

// Fetch implements frametab.FrameStore.
func (s *rdmaStore) Fetch(clk *simclock.Clock, id uint64) (any, bool, error) {
	img, err := s.fetch(clk, id)
	if err != nil {
		return nil, false, err
	}
	// Dirtiness is tracked at the fusion server, not per local copy.
	return img, false, nil
}

// Create implements frametab.FrameStore: the DBP frame was just created
// (zero-filled) by the fusion server; pull it like any other page.
func (s *rdmaStore) Create(clk *simclock.Clock, id uint64) (any, error) {
	return s.fetch(clk, id)
}

// Evict implements frametab.EvictStore: dropping a local copy costs
// nothing — the DBP holds the authoritative image (write-lock releases
// pushed every modification before the lock could move).
func (s *rdmaStore) Evict(clk *simclock.Clock, id uint64, slot any, dirty bool) error {
	return nil
}

// dropLocal implements invalidation delivery: a peer's write obsoleted our
// copy. Pinned frames are left in place — the holder owns the page lock, so
// a concurrent invalidation for it cannot happen; unpinned copies go.
func (p *RDMASharedPool) dropLocal(pageID uint64) {
	p.tab.TakeIfIdle(pageID)
}

// SetFlushBarrier implements buffer.Pool.
func (p *RDMASharedPool) SetFlushBarrier(fb buffer.FlushBarrier) { p.barrier = fb }

// Stats implements buffer.Pool.
func (p *RDMASharedPool) Stats() buffer.Stats { return p.tab.Stats() }

// Resident implements buffer.Pool: the LBP copies this node holds — the
// memory overhead the paper charges against this design.
func (p *RDMASharedPool) Resident() int { return p.tab.Resident() }

// PinnedFrames reports frames with live pins (conformance leak check).
func (p *RDMASharedPool) PinnedFrames() int { return p.tab.PinnedFrames() }

// NIC exposes the node's NIC for bandwidth accounting.
func (p *RDMASharedPool) NIC() *rdma.NIC { return p.nic }

// Get implements buffer.Pool.
func (p *RDMASharedPool) Get(clk *simclock.Clock, id uint64, mode buffer.Mode) (buffer.Frame, error) {
	if err := p.checkAlive(); err != nil {
		return nil, err
	}
	if _, err := p.fusion.getPage(clk, p.node, id); err != nil {
		return nil, err
	}
	return p.lockAndBind(clk, id, mode)
}

// NewPage implements buffer.Pool: a globally fresh page.
func (p *RDMASharedPool) NewPage(clk *simclock.Clock) (buffer.Frame, error) {
	if err := p.checkAlive(); err != nil {
		return nil, err
	}
	id := p.fusion.store.AllocPageID()
	if _, err := p.fusion.createPage(clk, p.node, id); err != nil {
		return nil, err
	}
	return p.lockAndBind(clk, id, buffer.Write)
}

// GetOrCreate write-locks page id, creating it DBP-wide when it has no
// durable image yet (recovery redo of post-checkpoint page creations).
func (p *RDMASharedPool) GetOrCreate(clk *simclock.Clock, id uint64) (buffer.Frame, error) {
	if err := p.checkAlive(); err != nil {
		return nil, err
	}
	f, err := p.Get(clk, id, buffer.Write)
	if err == nil {
		return f, nil
	}
	if !errors.Is(err, storage.ErrNotFound) {
		return nil, err
	}
	if _, cerr := p.fusion.createPage(clk, p.node, id); cerr != nil {
		return nil, cerr
	}
	return p.lockAndBind(clk, id, buffer.Write)
}

// lockAndBind takes the distributed page lock, then materializes the local
// copy through the table (lock first: the copy must reflect the image the
// lock protects).
func (p *RDMASharedPool) lockAndBind(clk *simclock.Clock, id uint64, mode buffer.Mode) (buffer.Frame, error) {
	if err := p.fusion.Lock(clk, p.node, id, mode == buffer.Write); err != nil {
		return nil, err
	}
	f, err := p.tab.Get(clk, id, mode)
	if err != nil {
		if mode == buffer.Write {
			p.fusion.UnlockWrite(clk, p.node, id)
		} else {
			p.fusion.UnlockRead(clk, p.node, id)
		}
		return nil, err
	}
	return &mpBound{pool: p, clk: clk, id: id, fr: f, img: f.Slot().([]byte), mode: mode}, nil
}

// FlushAll implements buffer.Pool: checkpointing the DBP through the fusion
// server.
func (p *RDMASharedPool) FlushAll(clk *simclock.Clock) error {
	if err := p.checkAlive(); err != nil {
		return err
	}
	return p.fusion.FlushDirty(clk, p.barrier)
}

// mpBound is a latched local page copy.
type mpBound struct {
	pool     *RDMASharedPool
	clk      *simclock.Clock
	id       uint64
	fr       *frametab.Frame
	img      []byte
	mode     buffer.Mode
	released bool
	wrote    bool
}

func (b *mpBound) ID() uint64 { return b.id }

func (b *mpBound) MarkDirty() {}

func (b *mpBound) ReadAt(off int, buf []byte) error {
	if b.released {
		return fmt.Errorf("sharing: read on released mp frame %d", b.id)
	}
	if off < 0 || off+len(buf) > len(b.img) {
		return fmt.Errorf("sharing: mp read out of bounds")
	}
	copy(buf, b.img[off:])
	b.clk.Advance(cxl.BufferDRAMProfile().ReadCost(len(buf)))
	return nil
}

func (b *mpBound) WriteAt(off int, data []byte) error {
	if b.released {
		return fmt.Errorf("sharing: write on released mp frame %d", b.id)
	}
	if b.mode != buffer.Write {
		return fmt.Errorf("sharing: write to page %d under a read lock", b.id)
	}
	if off < 0 || off+len(data) > len(b.img) {
		return fmt.Errorf("sharing: mp write out of bounds")
	}
	copy(b.img[off:], data)
	b.clk.Advance(cxl.BufferDRAMProfile().WriteCost(len(data)))
	b.wrote = true
	return nil
}

// Release implements buffer.Frame: the PolarDB-MP release protocol — push
// the FULL page to the DBP before the lock can move, then invalidate. The
// local pin drops first (as in the pre-frametab pool): the push works on
// the image this bound frame holds, and a concurrent eviction of the
// now-unpinned table entry cannot disturb it.
func (b *mpBound) Release() error {
	if b.released {
		return fmt.Errorf("sharing: double release of mp frame %d", b.id)
	}
	b.released = true
	p := b.pool
	b.fr.Unlock(b.mode)
	p.tab.Unpin(b.fr)
	if b.mode == buffer.Write {
		if b.wrote {
			p.fusion.mu.Lock()
			ps := p.fusion.pages[b.id]
			p.fusion.mu.Unlock()
			if ps == nil {
				return fmt.Errorf("sharing: release of unregistered page %d", b.id)
			}
			p.tab.Counters.RemoteWrites.Add(1)
			if err := p.fusion.dbp.Write(b.clk, p.nic, ps.off, b.img); err != nil {
				return err
			}
			return p.fusion.UnlockWrite(b.clk, p.node, b.id)
		}
		return p.fusion.unlockWriteCleanRDMA(b.clk, p.node, b.id)
	}
	return p.fusion.UnlockRead(b.clk, p.node, b.id)
}
