package sharing

import (
	"fmt"
	"sync"
	"sync/atomic"

	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/frametab"
	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simcpu"
	"polarcxlmem/internal/simmem"
	"polarcxlmem/internal/storage"
)

// SharedPool implements buffer.Pool over the distributed buffer pool, which
// lets the FULL transaction engine (B+tree, mini-transactions, WAL) run
// multi-primary: several nodes execute transactions against the same tables
// whose pages live once, in CXL, behind the fusion server.
//
// Mapping onto the engine's expectations:
//
//   - Get's latch is the DISTRIBUTED page lock — the paper's page-lock
//     integration (§3.3): mini-transactions hold these locks until commit,
//     exactly as PolarDB-MP's 2PL prescribes. The pool plugs it in as the
//     table's frametab.Latcher, replacing the frame-local latch entirely.
//   - A write-latched frame is released by clflushing the page's dirty
//     lines (publication) and unlocking at the fusion server, which flips
//     the other nodes' invalid flags.
//   - Get honours this node's removal flag (a frametab.Revalidator: a
//     removed entry is retired and re-registered) and invalid flag (inside
//     Latch, under the page lock) before handing the frame out, so cached
//     lines never go stale.
//
// The node's metadata entries live in a frametab table whose capacity is the
// flag-region slot count; entry recycling is the table's pin-aware eviction,
// so an entry can never be recycled out from under a live frame.
//
// Every node shares one wal.Log (a single global log stream) and one
// storage.Store; unit-id spaces are disambiguated by the caller (give each
// node's IDGen a distinct high-bit base).
//
// Known simplification: concurrent structure modifications from DIFFERENT
// nodes could deadlock on page-lock order; PolarDB-MP resolves this with a
// global SMO latch, reproduced here by TakeSMOLock (btree acquires its
// per-tree writer mutex locally, so single-node behaviour is unchanged —
// multi-node drivers serialize writers per table, as the tests do).
type SharedPool struct {
	node   string
	fusion *Fusion
	cache  *simcpu.Cache
	flags  *simmem.Region
	dbp    *simmem.Region

	tab     *frametab.Table
	sst     *sharedStore
	barrier buffer.FlushBarrier
	nslots  int
	crashed atomic.Bool
	obsReg  atomic.Pointer[obs.Registry] // survives the RejoinPrimary tab rebuild
}

var (
	_ buffer.Pool    = (*SharedPool)(nil)
	_ buffer.Creator = (*SharedPool)(nil)
)

// sharedStore is SharedPool's frametab backend: slots are *pmeta entries
// pointing at a flag-word pair and a DBP frame address.
type sharedStore struct {
	p *SharedPool

	mu        sync.Mutex
	freeSlots []int
}

// NewSharedPool builds one node's view of the distributed buffer pool.
func NewSharedPool(node string, fusion *Fusion, cache *simcpu.Cache, flagRegion *simmem.Region) *SharedPool {
	p := &SharedPool{
		node:   node,
		fusion: fusion,
		cache:  cache,
		flags:  flagRegion,
		dbp:    fusion.Region(),
	}
	nslots := int(flagRegion.Size() / flagEntrySize)
	p.nslots = nslots
	p.sst = &sharedStore{p: p}
	for i := nslots - 1; i >= 0; i-- {
		p.sst.freeSlots = append(p.sst.freeSlots, i)
	}
	p.tab = frametab.New(frametab.Config{
		Capacity: nslots,
		Store:    p.sst,
		NotFound: storage.ErrNotFound,
	})
	return p
}

// CrashPrimary kills this node: the fusion server marks it dead (its lock
// leases stop renewing; survivors — or an explicit EvictNode — reclaim its
// locks once they expire), and every local pool operation fails until
// RejoinPrimary. The node's in-flight work simply stops, exactly as a
// process crash would leave it.
func (p *SharedPool) CrashPrimary() {
	p.crashed.Store(true)
	// Power loss: every unflushed line in the host's CPU cache is gone. The
	// rejoined incarnation must never be able to write back pre-crash data
	// over frames the fusion server has since rebuilt.
	p.cache.Drop()
	p.fusion.CrashNode(p.node)
}

// RejoinPrimary restarts the node with empty local state: the fusion server
// evicts whatever the dead incarnation still held, the metadata table and
// flag-slot pool are rebuilt from scratch, and the node's lease restarts.
func (p *SharedPool) RejoinPrimary(clk *simclock.Clock) error {
	if err := p.fusion.RejoinNode(clk, p.node); err != nil {
		return err
	}
	p.sst.mu.Lock()
	p.sst.freeSlots = p.sst.freeSlots[:0]
	for i := p.nslots - 1; i >= 0; i-- {
		p.sst.freeSlots = append(p.sst.freeSlots, i)
	}
	p.sst.mu.Unlock()
	p.tab = frametab.New(frametab.Config{
		Capacity: p.nslots,
		Store:    p.sst,
		NotFound: storage.ErrNotFound,
	})
	if reg := p.obsReg.Load(); reg != nil {
		p.tab.SetObserver(reg, "shared/"+p.node)
	}
	p.crashed.Store(false)
	return nil
}

// SetObserver registers this node's metadata-table metrics
// (frametab.shared/<node>.*) with reg; the fusion server's cluster-wide
// metrics are registered separately via Fusion.SetObserver. The registration
// survives RejoinPrimary's table rebuild. A nil reg detaches.
func (p *SharedPool) SetObserver(reg *obs.Registry) {
	p.obsReg.Store(reg)
	if reg == nil {
		p.tab.SetObserver(nil, "")
		return
	}
	p.tab.SetObserver(reg, "shared/"+p.node)
}

// Crashed reports whether the node is currently down.
func (p *SharedPool) Crashed() bool { return p.crashed.Load() }

func (p *SharedPool) checkAlive() error {
	if p.crashed.Load() {
		return fmt.Errorf("sharing: node %s is crashed: %w", p.node, ErrNodeEvicted)
	}
	return nil
}

// SetFlushBarrier implements buffer.Pool (checkpointing is driven through
// the fusion server in the MP deployment; the barrier applies there).
func (p *SharedPool) SetFlushBarrier(fb buffer.FlushBarrier) { p.barrier = fb }

// Stats implements buffer.Pool.
func (p *SharedPool) Stats() buffer.Stats { return p.tab.Stats() }

// Resident implements buffer.Pool: like PolarCXLMem, a node holds no page
// data locally — only metadata entries.
func (p *SharedPool) Resident() int { return p.tab.Resident() }

// PinnedFrames reports entries with live pins (conformance leak check).
func (p *SharedPool) PinnedFrames() int { return p.tab.PinnedFrames() }

func (p *SharedPool) flagOffsets(slot int) flagAddrs {
	base := p.flags.Base() + int64(slot)*flagEntrySize
	return flagAddrs{invalid: base, removal: base + 8}
}

// register claims a flag slot and registers with the fusion server; create
// selects the fresh-page path (no storage image yet).
func (s *sharedStore) register(clk *simclock.Clock, pageID uint64, create bool) (*pmeta, error) {
	p := s.p
	s.mu.Lock()
	if len(s.freeSlots) == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("sharing: node %s pool metadata full", p.node)
	}
	slot := s.freeSlots[len(s.freeSlots)-1]
	s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
	s.mu.Unlock()
	fa := p.flagOffsets(slot)
	if err := p.fusion.dev.Store64(clk, fa.invalid, 0); err != nil {
		return nil, err
	}
	if err := p.fusion.dev.Store64(clk, fa.removal, 0); err != nil {
		return nil, err
	}
	var off int64
	var err error
	if create {
		off, err = p.fusion.CreatePage(clk, p.node, pageID, fa)
	} else {
		off, err = p.fusion.GetPage(clk, p.node, pageID, fa)
	}
	if err != nil {
		s.mu.Lock()
		s.freeSlots = append(s.freeSlots, slot)
		s.mu.Unlock()
		return nil, err
	}
	// Install-time invalidation: the frame may have had another tenant.
	if err := p.cache.Flush(clk, p.dbp, off, page.Size); err != nil {
		return nil, err
	}
	// The install flush discharges any invalidation this node owed on the
	// page (e.g. set while the entry was evicted from the metadata table).
	resident, _ := p.cache.LinesInRange(p.dbp, off, page.Size)
	p.fusion.obsState().emit(clk.Now(), obs.EvInvalidAck, p.node, pageID, int64(resident))
	return &pmeta{slot: slot, dataOff: off}, nil
}

// Fetch implements frametab.FrameStore.
func (s *sharedStore) Fetch(clk *simclock.Clock, id uint64) (any, bool, error) {
	m, err := s.register(clk, id, false)
	if err != nil {
		return nil, false, err
	}
	// Dirtiness is tracked at the fusion server (write-unlock), not per node.
	return m, false, nil
}

// Create implements frametab.FrameStore: a globally fresh, zero-filled DBP
// page.
func (s *sharedStore) Create(clk *simclock.Clock, id uint64) (any, error) {
	m, err := s.register(clk, id, true)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Evict implements frametab.EvictStore: recycling a metadata entry only
// returns the flag slot — the page itself lives at the fusion server.
func (s *sharedStore) Evict(clk *simclock.Clock, id uint64, slot any, dirty bool) error {
	m := slot.(*pmeta)
	s.mu.Lock()
	s.freeSlots = append(s.freeSlots, m.slot)
	s.mu.Unlock()
	return nil
}

// Revalidate implements frametab.Revalidator: the fusion server sets our
// removal flag when it recycles the DBP frame; a removed entry must be
// retired and re-registered.
func (s *sharedStore) Revalidate(clk *simclock.Clock, id uint64, slot any) (bool, error) {
	m := slot.(*pmeta)
	fa := s.p.flagOffsets(m.slot)
	removed, err := s.p.fusion.dev.Load64(clk, fa.removal)
	if err != nil {
		return false, err
	}
	return removed == 0, nil
}

// Latch implements frametab.Latcher: the distributed page lock, plus the
// invalid-flag check that must run under it. fresh pages (our own create)
// skip the check — no other node has ever held them.
func (s *sharedStore) Latch(clk *simclock.Clock, id uint64, slot any, write, fresh bool) error {
	p := s.p
	m := slot.(*pmeta)
	if err := p.fusion.Lock(clk, p.node, id, write); err != nil {
		return err
	}
	if fresh {
		return nil
	}
	if err := p.honourInvalid(clk, id, m); err != nil {
		if write {
			p.fusion.UnlockWrite(clk, p.node, id)
		} else {
			p.fusion.UnlockRead(clk, p.node, id)
		}
		return err
	}
	return nil
}

// honourInvalid drops possibly-stale cached lines when this node's invalid
// flag is set. Must run under the page lock.
func (p *SharedPool) honourInvalid(clk *simclock.Clock, id uint64, m *pmeta) error {
	fa := p.flagOffsets(m.slot)
	inv, err := p.fusion.dev.Load64(clk, fa.invalid)
	if err != nil {
		return err
	}
	if inv == 0 {
		return nil
	}
	if err := p.cache.Flush(clk, p.dbp, m.dataOff, page.Size); err != nil {
		return err
	}
	if err := p.fusion.dev.Store64(clk, fa.invalid, 0); err != nil {
		return err
	}
	// Aux = lines still resident after the flush (nonzero only when the
	// flush was fault-dropped, leaving the stale copy in place).
	resident, _ := p.cache.LinesInRange(p.dbp, m.dataOff, page.Size)
	p.fusion.obsState().emit(clk.Now(), obs.EvInvalidAck, p.node, id, int64(resident))
	return nil
}

// Get implements buffer.Pool: the latch is the distributed page lock.
func (p *SharedPool) Get(clk *simclock.Clock, id uint64, mode buffer.Mode) (buffer.Frame, error) {
	if err := p.checkAlive(); err != nil {
		return nil, err
	}
	f, err := p.tab.Get(clk, id, mode)
	if err != nil {
		return nil, err
	}
	return &sharedFrame{pool: p, clk: clk, id: id, fr: f, m: f.Slot().(*pmeta), mode: mode}, nil
}

// NewPage implements buffer.Pool: a globally fresh page, zero-filled in the
// DBP.
func (p *SharedPool) NewPage(clk *simclock.Clock) (buffer.Frame, error) {
	if err := p.checkAlive(); err != nil {
		return nil, err
	}
	id := p.fusion.store.AllocPageID()
	f, err := p.tab.Create(clk, id)
	if err != nil {
		return nil, err
	}
	return &sharedFrame{pool: p, clk: clk, id: id, fr: f, m: f.Slot().(*pmeta), mode: buffer.Write}, nil
}

// GetOrCreate write-locks page id, creating it DBP-wide when it has no
// durable image yet (recovery redo of post-checkpoint page creations).
func (p *SharedPool) GetOrCreate(clk *simclock.Clock, id uint64) (buffer.Frame, error) {
	if err := p.checkAlive(); err != nil {
		return nil, err
	}
	f, err := p.tab.GetOrCreate(clk, id)
	if err != nil {
		return nil, err
	}
	return &sharedFrame{pool: p, clk: clk, id: id, fr: f, m: f.Slot().(*pmeta), mode: buffer.Write}, nil
}

// FlushAll implements buffer.Pool: checkpointing the DBP is the fusion
// server's job (it owns the dirty set); a node-side FlushAll delegates.
func (p *SharedPool) FlushAll(clk *simclock.Clock) error {
	if err := p.checkAlive(); err != nil {
		return err
	}
	return p.fusion.FlushDirty(clk, p.barrier)
}

// sharedFrame is a latched page accessed in place in the DBP through the
// node's CPU cache.
type sharedFrame struct {
	pool     *SharedPool
	clk      *simclock.Clock
	id       uint64
	fr       *frametab.Frame
	m        *pmeta
	mode     buffer.Mode
	released bool
	wrote    bool
}

func (f *sharedFrame) ID() uint64 { return f.id }

func (f *sharedFrame) MarkDirty() {} // dirtiness is tracked at write-unlock

func (f *sharedFrame) ReadAt(off int, buf []byte) error {
	if f.released {
		return fmt.Errorf("sharing: read on released shared frame %d", f.id)
	}
	if err := f.pool.cache.Read(f.clk, f.pool.dbp, f.m.dataOff+int64(off), buf); err != nil {
		return err
	}
	f.pool.fusion.obsState().emit(f.clk.Now(), obs.EvSharedRead, f.pool.node, f.id, 0)
	return nil
}

func (f *sharedFrame) WriteAt(off int, data []byte) error {
	if f.released {
		return fmt.Errorf("sharing: write on released shared frame %d", f.id)
	}
	if f.mode != buffer.Write {
		return fmt.Errorf("sharing: write to page %d under a read lock", f.id)
	}
	f.wrote = true
	return f.pool.cache.Write(f.clk, f.pool.dbp, f.m.dataOff+int64(off), data)
}

// Release implements buffer.Frame: the §3.3 publication protocol on write
// locks (clflush dirty lines, then unlock — the fusion server invalidates
// the other active nodes).
func (f *sharedFrame) Release() error {
	if f.released {
		return fmt.Errorf("sharing: double release of shared frame %d", f.id)
	}
	f.released = true
	p := f.pool
	defer p.tab.Unpin(f.fr)
	if f.mode == buffer.Write {
		if f.wrote {
			if err := p.cache.Flush(f.clk, p.dbp, f.m.dataOff, page.Size); err != nil {
				return err
			}
			if o := p.fusion.obsState(); o != nil {
				// Aux = dirty lines surviving the publication flush (torn
				// publication when nonzero).
				_, dirty := p.cache.LinesInRange(p.dbp, f.m.dataOff, page.Size)
				o.emit(f.clk.Now(), obs.EvPublish, p.node, f.id, int64(dirty))
			}
			return p.fusion.UnlockWrite(f.clk, p.node, f.id)
		}
		// Clean write latch: nothing to publish, nobody to invalidate.
		return p.fusion.unlockWriteClean(f.clk, p.node, f.id)
	}
	return p.fusion.UnlockRead(f.clk, p.node, f.id)
}
