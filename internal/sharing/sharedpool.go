package sharing

import (
	"fmt"
	"sync"

	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simcpu"
	"polarcxlmem/internal/simmem"
)

// SharedPool implements buffer.Pool over the distributed buffer pool, which
// lets the FULL transaction engine (B+tree, mini-transactions, WAL) run
// multi-primary: several nodes execute transactions against the same tables
// whose pages live once, in CXL, behind the fusion server.
//
// Mapping onto the engine's expectations:
//
//   - Get's latch is the DISTRIBUTED page lock — the paper's page-lock
//     integration (§3.3): mini-transactions hold these locks until commit,
//     exactly as PolarDB-MP's 2PL prescribes.
//   - A write-latched frame is released by clflushing the page's dirty
//     lines (publication) and unlocking at the fusion server, which flips
//     the other nodes' invalid flags.
//   - Get honours this node's removal and invalid flags before handing the
//     frame out, so cached lines never go stale.
//
// Every node shares one wal.Log (a single global log stream) and one
// storage.Store; unit-id spaces are disambiguated by the caller (give each
// node's IDGen a distinct high-bit base).
//
// Known simplification: concurrent structure modifications from DIFFERENT
// nodes could deadlock on page-lock order; PolarDB-MP resolves this with a
// global SMO latch, reproduced here by TakeSMOLock (btree acquires its
// per-tree writer mutex locally, so single-node behaviour is unchanged —
// multi-node drivers serialize writers per table, as the tests do).
type SharedPool struct {
	node   string
	fusion *Fusion
	cache  *simcpu.Cache
	flags  *simmem.Region
	dbp    *simmem.Region

	mu        sync.Mutex
	meta      map[uint64]*pmeta
	freeSlots []int
	nslots    int
	barrier   buffer.FlushBarrier
	stats     buffer.Stats
}

var _ buffer.Pool = (*SharedPool)(nil)

// NewSharedPool builds one node's view of the distributed buffer pool.
func NewSharedPool(node string, fusion *Fusion, cache *simcpu.Cache, flagRegion *simmem.Region) *SharedPool {
	p := &SharedPool{
		node:   node,
		fusion: fusion,
		cache:  cache,
		flags:  flagRegion,
		dbp:    fusion.Region(),
		meta:   make(map[uint64]*pmeta),
		nslots: int(flagRegion.Size() / flagEntrySize),
	}
	for i := p.nslots - 1; i >= 0; i-- {
		p.freeSlots = append(p.freeSlots, i)
	}
	return p
}

// SetFlushBarrier implements buffer.Pool (checkpointing is driven through
// the fusion server in the MP deployment; the barrier applies there).
func (p *SharedPool) SetFlushBarrier(fb buffer.FlushBarrier) { p.barrier = fb }

// Stats implements buffer.Pool.
func (p *SharedPool) Stats() buffer.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Resident implements buffer.Pool: like PolarCXLMem, a node holds no page
// data locally — only metadata entries.
func (p *SharedPool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.meta)
}

func (p *SharedPool) flagOffsets(slot int) flagAddrs {
	base := p.flags.Base() + int64(slot)*flagEntrySize
	return flagAddrs{invalid: base, removal: base + 8}
}

// ensure returns the node's metadata for pageID, registering with the
// fusion server on first use or after a removal. create selects the
// fresh-page path (no storage image yet).
func (p *SharedPool) ensure(clk *simclock.Clock, pageID uint64, create bool) (*pmeta, error) {
	p.mu.Lock()
	m, ok := p.meta[pageID]
	p.mu.Unlock()
	if ok {
		fa := p.flagOffsets(m.slot)
		removed, err := p.fusion.dev.Load64(clk, fa.removal)
		if err != nil {
			return nil, err
		}
		if removed == 0 {
			return m, nil
		}
		p.mu.Lock()
		delete(p.meta, pageID)
		p.freeSlots = append(p.freeSlots, m.slot)
		p.mu.Unlock()
	}
	p.mu.Lock()
	if len(p.freeSlots) == 0 {
		for id, om := range p.meta {
			delete(p.meta, id)
			p.freeSlots = append(p.freeSlots, om.slot)
			break
		}
		if len(p.freeSlots) == 0 {
			p.mu.Unlock()
			return nil, fmt.Errorf("sharing: node %s pool metadata full", p.node)
		}
	}
	slot := p.freeSlots[len(p.freeSlots)-1]
	p.freeSlots = p.freeSlots[:len(p.freeSlots)-1]
	p.mu.Unlock()
	fa := p.flagOffsets(slot)
	if err := p.fusion.dev.Store64(clk, fa.invalid, 0); err != nil {
		return nil, err
	}
	if err := p.fusion.dev.Store64(clk, fa.removal, 0); err != nil {
		return nil, err
	}
	var off int64
	var err error
	if create {
		off, err = p.fusion.CreatePage(clk, p.node, pageID, fa)
	} else {
		off, err = p.fusion.GetPage(clk, p.node, pageID, fa)
	}
	if err != nil {
		p.mu.Lock()
		p.freeSlots = append(p.freeSlots, slot)
		p.mu.Unlock()
		return nil, err
	}
	// Install-time invalidation: the frame may have had another tenant.
	if err := p.cache.Flush(clk, p.dbp, off, page.Size); err != nil {
		return nil, err
	}
	m = &pmeta{slot: slot, dataOff: off}
	p.mu.Lock()
	p.meta[pageID] = m
	p.mu.Unlock()
	return m, nil
}

// honourInvalid drops possibly-stale cached lines when this node's invalid
// flag is set. Must run under the page lock.
func (p *SharedPool) honourInvalid(clk *simclock.Clock, m *pmeta) error {
	fa := p.flagOffsets(m.slot)
	inv, err := p.fusion.dev.Load64(clk, fa.invalid)
	if err != nil {
		return err
	}
	if inv == 0 {
		return nil
	}
	if err := p.cache.Flush(clk, p.dbp, m.dataOff, page.Size); err != nil {
		return err
	}
	return p.fusion.dev.Store64(clk, fa.invalid, 0)
}

// Get implements buffer.Pool: the latch is the distributed page lock.
func (p *SharedPool) Get(clk *simclock.Clock, id uint64, mode buffer.Mode) (buffer.Frame, error) {
	m, err := p.ensure(clk, id, false)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.stats.Hits++
	p.mu.Unlock()
	if err := p.fusion.Lock(clk, id, mode == buffer.Write); err != nil {
		return nil, err
	}
	if err := p.honourInvalid(clk, m); err != nil {
		p.unlockErr(clk, id, mode)
		return nil, err
	}
	return &sharedFrame{pool: p, clk: clk, id: id, m: m, mode: mode}, nil
}

// NewPage implements buffer.Pool: a globally fresh page, zero-filled in the
// DBP.
func (p *SharedPool) NewPage(clk *simclock.Clock) (buffer.Frame, error) {
	id := p.fusion.store.AllocPageID()
	m, err := p.ensure(clk, id, true)
	if err != nil {
		return nil, err
	}
	if err := p.fusion.Lock(clk, id, true); err != nil {
		return nil, err
	}
	return &sharedFrame{pool: p, clk: clk, id: id, m: m, mode: buffer.Write}, nil
}

func (p *SharedPool) unlockErr(clk *simclock.Clock, id uint64, mode buffer.Mode) {
	if mode == buffer.Write {
		p.fusion.UnlockWrite(clk, p.node, id)
	} else {
		p.fusion.UnlockRead(clk, id)
	}
}

// FlushAll implements buffer.Pool: checkpointing the DBP is the fusion
// server's job (it owns the dirty set); a node-side FlushAll delegates.
func (p *SharedPool) FlushAll(clk *simclock.Clock) error {
	return p.fusion.FlushDirty(clk, p.barrier)
}

// sharedFrame is a latched page accessed in place in the DBP through the
// node's CPU cache.
type sharedFrame struct {
	pool     *SharedPool
	clk      *simclock.Clock
	id       uint64
	m        *pmeta
	mode     buffer.Mode
	released bool
	wrote    bool
}

func (f *sharedFrame) ID() uint64 { return f.id }

func (f *sharedFrame) MarkDirty() {} // dirtiness is tracked at write-unlock

func (f *sharedFrame) ReadAt(off int, buf []byte) error {
	if f.released {
		return fmt.Errorf("sharing: read on released shared frame %d", f.id)
	}
	return f.pool.cache.Read(f.clk, f.pool.dbp, f.m.dataOff+int64(off), buf)
}

func (f *sharedFrame) WriteAt(off int, data []byte) error {
	if f.released {
		return fmt.Errorf("sharing: write on released shared frame %d", f.id)
	}
	if f.mode != buffer.Write {
		return fmt.Errorf("sharing: write to page %d under a read lock", f.id)
	}
	f.wrote = true
	return f.pool.cache.Write(f.clk, f.pool.dbp, f.m.dataOff+int64(off), data)
}

// Release implements buffer.Frame: the §3.3 publication protocol on write
// locks (clflush dirty lines, then unlock — the fusion server invalidates
// the other active nodes).
func (f *sharedFrame) Release() error {
	if f.released {
		return fmt.Errorf("sharing: double release of shared frame %d", f.id)
	}
	f.released = true
	p := f.pool
	if f.mode == buffer.Write {
		if f.wrote {
			if err := p.cache.Flush(f.clk, p.dbp, f.m.dataOff, page.Size); err != nil {
				return err
			}
			return p.fusion.UnlockWrite(f.clk, p.node, f.id)
		}
		// Clean write latch: nothing to publish, nobody to invalidate.
		return p.fusion.unlockWriteClean(f.clk, f.id)
	}
	return p.fusion.UnlockRead(f.clk, f.id)
}
