package sharing

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/rdma"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
)

// rig builds a fusion server with DBP capacity frames and n CXL nodes.
type rig struct {
	sw     *cxl.Switch
	fusion *Fusion
	nodes  []*Node
	store  *storage.Store
	clk    *simclock.Clock
}

func newRig(t *testing.T, dbpPages, nnodes, slots int) *rig {
	t.Helper()
	dbpBytes := int64(dbpPages) * page.Size
	flagBytes := int64(slots) * flagEntrySize
	sw := cxl.NewSwitch(cxl.Config{PoolBytes: dbpBytes + int64(nnodes)*flagBytes + 4096})
	clk := simclock.New()
	store := storage.New(storage.Config{})

	fhost := sw.AttachHost("fusion-host")
	dbpRegion, err := fhost.Allocate(clk, "dbp", dbpBytes)
	if err != nil {
		t.Fatal(err)
	}
	fusion := NewFusion(fhost, dbpRegion, store)

	r := &rig{sw: sw, fusion: fusion, store: store, clk: clk}
	for i := 0; i < nnodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		host := sw.AttachHost(name)
		flagRegion, err := host.Allocate(clk, name+"-flags", flagBytes)
		if err != nil {
			t.Fatal(err)
		}
		cache := host.NewCache(name, 4<<20)
		r.nodes = append(r.nodes, NewNode(name, fusion, cache, flagRegion))
	}
	return r
}

// seedPage writes a durable page whose body is filled with fill.
func (r *rig) seedPage(t *testing.T, fill byte) uint64 {
	t.Helper()
	id := r.store.AllocPageID()
	img := make([]byte, page.Size)
	for i := page.HeaderSize; i < len(img); i++ {
		img[i] = fill
	}
	if err := r.store.WritePage(r.clk, id, img); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCXLCoherencyPreventsStaleReads(t *testing.T) {
	r := newRig(t, 8, 2, 16)
	pid := r.seedPage(t, 0x11)
	a, b := r.nodes[0], r.nodes[1]

	// B reads first: caches the lines.
	buf := make([]byte, 128)
	if err := b.Read(r.clk, pid, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x11 {
		t.Fatalf("initial read = %#x", buf[0])
	}
	// A updates the same range.
	update := bytes.Repeat([]byte{0x22}, 128)
	if err := a.Write(r.clk, pid, 4096, update); err != nil {
		t.Fatal(err)
	}
	// B must see the new data (invalid flag honoured).
	if err := b.Read(r.clk, pid, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x22 {
		t.Fatalf("stale read after coherent update: %#x", buf[0])
	}
	if b.Stats().Invalidations != 1 {
		t.Fatalf("invalidations = %d", b.Stats().Invalidations)
	}
}

func TestCXLWithoutCoherencyReadsStale(t *testing.T) {
	// The negative control: disable invalid-flag checking and observe the
	// stale read the hardware would give you. Proves the simulated CPU
	// cache makes the protocol falsifiable.
	r := newRig(t, 8, 2, 16)
	pid := r.seedPage(t, 0x11)
	a, b := r.nodes[0], r.nodes[1]
	b.DisableCoherency = true

	buf := make([]byte, 64)
	if err := b.Read(r.clk, pid, 0+page.HeaderSize, buf); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(r.clk, pid, 0+page.HeaderSize, bytes.Repeat([]byte{0x22}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := b.Read(r.clk, pid, 0+page.HeaderSize, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x11 {
		t.Fatalf("expected stale 0x11 with coherency disabled, got %#x", buf[0])
	}
}

func TestWriterSeesOwnWritesAndPublishes(t *testing.T) {
	r := newRig(t, 8, 1, 16)
	pid := r.seedPage(t, 0x00)
	n := r.nodes[0]
	data := []byte("written in place in CXL")
	if err := n.Write(r.clk, pid, 1000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := n.Read(r.clk, pid, 1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read own write: %q", got)
	}
	// The DBP region itself must hold the data (clflush published it).
	m, err := n.ensurePage(r.clk, pid)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, len(data))
	if err := r.fusion.Region().ReadRaw(m.dataOff+1000, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, data) {
		t.Fatal("write-lock release did not publish dirty lines to CXL")
	}
}

func TestInterleavedCountersAreCoherent(t *testing.T) {
	// Two nodes increment a shared counter alternately; every increment
	// must observe the other's latest value.
	r := newRig(t, 8, 2, 16)
	pid := r.seedPage(t, 0)
	const rounds = 50
	off := int64(page.HeaderSize)
	for i := 0; i < rounds; i++ {
		for _, n := range r.nodes {
			err := n.ReadModifyWrite(r.clk, pid, off, 8, func(b []byte) {
				v := binary.LittleEndian.Uint64(b)
				binary.LittleEndian.PutUint64(b, v+1)
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	buf := make([]byte, 8)
	if err := r.nodes[0].Read(r.clk, pid, off, buf); err != nil {
		t.Fatal(err)
	}
	got := binary.LittleEndian.Uint64(buf)
	if got != rounds*2 {
		t.Fatalf("counter = %d, want %d (lost updates)", got, rounds*2)
	}
}

func TestRecycleSetsRemovalAndNodeRefetches(t *testing.T) {
	r := newRig(t, 2, 1, 16) // 2-frame DBP
	n := r.nodes[0]
	p1 := r.seedPage(t, 1)
	p2 := r.seedPage(t, 2)
	p3 := r.seedPage(t, 3)
	buf := make([]byte, 8)
	for _, pid := range []uint64{p1, p2} {
		if err := n.Read(r.clk, pid, 4096, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Third page forces a recycle of p1 (LRU).
	if err := n.Read(r.clk, p3, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 {
		t.Fatalf("p3 contents %#x", buf[0])
	}
	// p1's metadata is stale: the removal flag must be honoured and the
	// page re-fetched (recycling p2 to make room).
	if err := n.Read(r.clk, p1, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("refetched p1 contents %#x", buf[0])
	}
	if n.Stats().Removals == 0 {
		t.Fatal("removal flag never honoured")
	}
	if r.fusion.ResidentPages() != 2 {
		t.Fatalf("resident = %d", r.fusion.ResidentPages())
	}
}

func TestRecycleWritesDirtyPageToStorage(t *testing.T) {
	r := newRig(t, 2, 1, 16)
	n := r.nodes[0]
	p1 := r.seedPage(t, 1)
	if err := n.Write(r.clk, p1, 4096, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	// Force p1 out.
	p2, p3 := r.seedPage(t, 2), r.seedPage(t, 3)
	buf := make([]byte, 1)
	n.Read(r.clk, p2, 0, buf)
	n.Read(r.clk, p3, 0, buf)
	// Storage must hold the update.
	img := make([]byte, page.Size)
	if err := r.store.ReadPage(r.clk, p1, img); err != nil {
		t.Fatal(err)
	}
	if img[4096] != 0xEE {
		t.Fatal("recycled dirty page lost its update")
	}
}

func TestMetadataBufferReclaim(t *testing.T) {
	// A node with 2 metadata slots touching 3 pages must reclaim slots of
	// recycled pages.
	r := newRig(t, 2, 1, 2)
	n := r.nodes[0]
	pids := []uint64{r.seedPage(t, 1), r.seedPage(t, 2), r.seedPage(t, 3)}
	buf := make([]byte, 1)
	for _, pid := range pids {
		if err := n.Read(r.clk, pid, 4096, buf); err != nil {
			t.Fatal(err)
		}
	}
	if n.Stats().GetPageRPCs < 3 {
		t.Fatalf("getpage rpcs = %d", n.Stats().GetPageRPCs)
	}
}

// --- RDMA-MP baseline --------------------------------------------------------

type rdmaRig struct {
	fusion *RDMAFusion
	nodes  []*RDMANode
	store  *storage.Store
	clk    *simclock.Clock
}

func newRDMARig(t *testing.T, dbpPages, nnodes, lbpPages int) *rdmaRig {
	t.Helper()
	store := storage.New(storage.Config{})
	fusion := NewRDMAFusion(dbpPages, store)
	r := &rdmaRig{fusion: fusion, store: store, clk: simclock.New()}
	for i := 0; i < nnodes; i++ {
		name := fmt.Sprintf("rnode-%d", i)
		r.nodes = append(r.nodes, NewRDMANode(name, fusion, rdma.NewNIC(name, 0, 0), lbpPages))
	}
	return r
}

func (r *rdmaRig) seedPage(t *testing.T, fill byte) uint64 {
	t.Helper()
	id := r.store.AllocPageID()
	img := make([]byte, page.Size)
	for i := page.HeaderSize; i < len(img); i++ {
		img[i] = fill
	}
	if err := r.store.WritePage(r.clk, id, img); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestRDMAMPInvalidationPreventsStaleReads(t *testing.T) {
	r := newRDMARig(t, 8, 2, 4)
	pid := r.seedPage(t, 0x11)
	a, b := r.nodes[0], r.nodes[1]
	buf := make([]byte, 64)
	if err := b.Read(r.clk, pid, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(r.clk, pid, 4096, bytes.Repeat([]byte{0x22}, 64)); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Invalidations != 1 {
		t.Fatalf("invalidations = %d", b.Stats().Invalidations)
	}
	if err := b.Read(r.clk, pid, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x22 {
		t.Fatalf("stale read after invalidation: %#x", buf[0])
	}
}

func TestRDMAMPWithoutInvalidationReadsStale(t *testing.T) {
	r := newRDMARig(t, 8, 2, 4)
	r.fusion.DisableInvalidation = true
	pid := r.seedPage(t, 0x11)
	a, b := r.nodes[0], r.nodes[1]
	buf := make([]byte, 64)
	b.Read(r.clk, pid, 4096, buf)
	a.Write(r.clk, pid, 4096, bytes.Repeat([]byte{0x22}, 64))
	b.Read(r.clk, pid, 4096, buf)
	if buf[0] != 0x11 {
		t.Fatalf("expected stale read, got %#x", buf[0])
	}
}

func TestSyncGranularityAmplification(t *testing.T) {
	// The paper's core sharing claim: a small update costs the RDMA design
	// a full 16 KB page push (plus the earlier 16 KB fetch), while the CXL
	// design moves only the dirty cache lines.
	rc := newRig(t, 8, 2, 16)
	pid := rc.seedPage(t, 0)
	// Warm both nodes.
	buf := make([]byte, 8)
	rc.nodes[0].Read(rc.clk, pid, 4096, buf)
	rc.nodes[1].Read(rc.clk, pid, 4096, buf)
	linkBefore := rc.sw.FabricStats().Units
	if err := rc.nodes[0].Write(rc.clk, pid, 4096, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	cxlBytes := rc.sw.FabricStats().Units - linkBefore

	rr := newRDMARig(t, 8, 2, 4)
	rpid := rr.seedPage(t, 0)
	rr.nodes[0].Read(rr.clk, rpid, 4096, buf)
	rr.nodes[1].Read(rr.clk, rpid, 4096, buf)
	nicBefore := rr.nodes[0].NIC().Bandwidth().Stats().Units
	if err := rr.nodes[0].Write(rr.clk, rpid, 4096, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	rdmaBytes := rr.nodes[0].NIC().Bandwidth().Stats().Units - nicBefore

	if rdmaBytes < page.Size {
		t.Fatalf("RDMA write moved %d bytes; expected a full page push", rdmaBytes)
	}
	if cxlBytes*10 > rdmaBytes {
		t.Fatalf("CXL sync moved %d bytes vs RDMA %d — amplification gap missing", cxlBytes, rdmaBytes)
	}
}

func TestSharedWriteLatencyShape(t *testing.T) {
	// Per-operation virtual cost of a shared point-update: CXL must be
	// substantially cheaper (the fig. 11 mechanism).
	rc := newRig(t, 8, 2, 16)
	pid := rc.seedPage(t, 0)
	buf := make([]byte, 8)
	rc.nodes[0].Read(rc.clk, pid, 4096, buf)
	rc.nodes[1].Read(rc.clk, pid, 4096, buf)
	t0 := rc.clk.Now()
	for i := 0; i < 10; i++ {
		if err := rc.nodes[0].Write(rc.clk, pid, 4096, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cxlPerOp := (rc.clk.Now() - t0) / 10

	rr := newRDMARig(t, 8, 2, 4)
	rpid := rr.seedPage(t, 0)
	rr.nodes[0].Read(rr.clk, rpid, 4096, buf)
	rr.nodes[1].Read(rr.clk, rpid, 4096, buf)
	t1 := rr.clk.Now()
	for i := 0; i < 10; i++ {
		if err := rr.nodes[0].Write(rr.clk, rpid, 4096, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	rdmaPerOp := (rr.clk.Now() - t1) / 10
	if cxlPerOp >= rdmaPerOp {
		t.Fatalf("CXL shared write %d ns not cheaper than RDMA %d ns", cxlPerOp, rdmaPerOp)
	}
}

func TestFusionAccessorsAndExplicitRecycle(t *testing.T) {
	r := newRig(t, 4, 1, 16)
	if r.fusion.CapacityPages() != 4 {
		t.Fatalf("capacity = %d", r.fusion.CapacityPages())
	}
	p1 := r.seedPage(t, 1)
	buf := make([]byte, 8)
	if err := r.nodes[0].Read(r.clk, p1, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if r.fusion.GetCalls() != 1 {
		t.Fatalf("get calls = %d", r.fusion.GetCalls())
	}
	// Explicit background-recycle step frees the only (unlocked) page.
	if err := r.fusion.Recycle(r.clk); err != nil {
		t.Fatal(err)
	}
	if r.fusion.ResidentPages() != 0 {
		t.Fatal("recycle left the page resident")
	}
	// The node's next access honours the removal flag and re-fetches.
	if err := r.nodes[0].Read(r.clk, p1, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || r.nodes[0].Stats().Removals != 1 {
		t.Fatalf("refetch after explicit recycle: byte=%#x removals=%d", buf[0], r.nodes[0].Stats().Removals)
	}
}

func TestRDMANodeReadModifyWrite(t *testing.T) {
	r := newRDMARig(t, 8, 2, 4)
	pid := r.seedPage(t, 0)
	for i := 0; i < 10; i++ {
		n := r.nodes[i%2]
		err := n.ReadModifyWrite(r.clk, pid, 4096, 8, func(b []byte) { b[0]++ })
		if err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 8)
	if err := r.nodes[0].Read(r.clk, pid, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 10 {
		t.Fatalf("RMW counter = %d, want 10", buf[0])
	}
	if r.fusion.GetCalls() == 0 {
		t.Fatal("get calls not counted")
	}
}

func TestRDMAFusionFlushDirty(t *testing.T) {
	r := newRDMARig(t, 8, 1, 4)
	pid := r.seedPage(t, 0x3C)
	if err := r.nodes[0].Write(r.clk, pid, 4096, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	var barrierLSN *uint64
	if err := r.fusion.FlushDirty(r.clk, func(clk *simclock.Clock, lsn uint64) { barrierLSN = &lsn }); err != nil {
		t.Fatal(err)
	}
	if barrierLSN == nil {
		t.Fatal("flush barrier never invoked")
	}
	img := make([]byte, page.Size)
	if err := r.store.ReadPage(r.clk, pid, img); err != nil {
		t.Fatal(err)
	}
	if img[4096] != 0xAA {
		t.Fatal("dirty DBP page not checkpointed to storage")
	}
}
