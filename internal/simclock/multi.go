package simclock

import (
	"fmt"
	"sync"
)

// MultiResource is a k-server queueing station: up to k requests are served
// in parallel, each at ratePerSec. It models, e.g., a 16-vCPU instance (16
// servers of CPU work) or a multi-channel memory device.
type MultiResource struct {
	name string
	rate float64

	mu       sync.Mutex
	nextFree []int64 // per-server next-free time
	stats    ResourceStats
}

// NewMultiResource returns a k-server station. Each server serves ratePerSec
// units per virtual second. It panics on non-positive k or rate.
func NewMultiResource(name string, k int, ratePerSec float64) *MultiResource {
	if k <= 0 {
		panic(fmt.Sprintf("simclock: multi-resource %q needs k>0, got %d", name, k))
	}
	if ratePerSec <= 0 {
		panic(fmt.Sprintf("simclock: multi-resource %q must have positive rate, got %g", name, ratePerSec))
	}
	return &MultiResource{
		name:     name,
		rate:     ratePerSec,
		nextFree: make([]int64, k),
		stats:    ResourceStats{Name: name},
	}
}

// Name reports the station's name.
func (m *MultiResource) Name() string { return m.name }

// Servers reports the number of parallel servers.
func (m *MultiResource) Servers() int { return len(m.nextFree) }

// UseAt requests service of units starting no earlier than now on whichever
// server frees up first, and returns the virtual completion time.
func (m *MultiResource) UseAt(now, units int64) int64 {
	if units <= 0 {
		return now
	}
	dur := int64(float64(units) / m.rate * float64(Second))
	m.mu.Lock()
	best := 0
	for i := 1; i < len(m.nextFree); i++ {
		if m.nextFree[i] < m.nextFree[best] {
			best = i
		}
	}
	start := now
	if m.nextFree[best] > start {
		start = m.nextFree[best]
	}
	done := start + dur
	m.nextFree[best] = done
	m.stats.Requests++
	m.stats.Units += units
	m.stats.BusyNanos += dur
	m.stats.QueueNanos += start - now
	if done > m.stats.LastFree {
		m.stats.LastFree = done
	}
	m.mu.Unlock()
	return done
}

// Use charges service of units to clock c, advancing it to completion.
func (m *MultiResource) Use(c *Clock, units int64) {
	c.AdvanceTo(m.UseAt(c.Now(), units))
}

// Stats returns a snapshot of the station's counters.
func (m *MultiResource) Stats() ResourceStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Reset clears counters and frees every server.
func (m *MultiResource) Reset() {
	m.mu.Lock()
	for i := range m.nextFree {
		m.nextFree[i] = 0
	}
	m.stats = ResourceStats{Name: m.name}
	m.mu.Unlock()
}
