// Package simclock provides virtual time for the PolarCXLMem simulator.
//
// Every logical execution context (a database worker thread, a recovery
// scanner, a background recycler) owns a Clock that advances in virtual
// nanoseconds as the context charges the cost of the primitives it executes:
// memory loads, CXL flits, RDMA verbs, storage I/O.  Shared hardware —
// a NIC, a CXL link, a disk — is modelled as a Resource: a queueing server
// with a fixed service rate.  When several clocks charge the same Resource,
// later requests queue behind earlier ones in virtual time, which is what
// produces the saturation behaviour the paper measures (throughput plateaus,
// linearly rising latency past the knee).
//
// Virtual time replaces wall-clock measurement deliberately: the paper's
// hardware (a CXL 2.0 switch, ConnectX-6 NICs, 192-vCPU hosts) is not
// available, and the figures' shapes are queueing phenomena that a calibrated
// model reproduces deterministically.
package simclock

import (
	"fmt"
	"sync"
)

// Common virtual-time unit conversions, all in nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1_000
	Millisecond int64 = 1_000_000
	Second      int64 = 1_000_000_000
)

// Clock is the virtual-time position of one logical execution context.
// A Clock is owned by a single goroutine and is not safe for concurrent use;
// shared state lives in Resource.
type Clock struct {
	now int64
}

// New returns a Clock positioned at virtual time zero.
func New() *Clock { return &Clock{} }

// NewAt returns a Clock positioned at virtual time t.
func NewAt(t int64) *Clock { return &Clock{now: t} }

// Now reports the clock's current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds. Negative d is ignored:
// virtual time never runs backwards.
func (c *Clock) Advance(d int64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to absolute virtual time t if t is in
// the future; otherwise it is a no-op.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Seconds reports the clock position as floating-point seconds.
func (c *Clock) Seconds() float64 { return float64(c.now) / float64(Second) }

// ResourceStats is a snapshot of a Resource's accounting counters.
type ResourceStats struct {
	Name       string
	Requests   int64 // number of Use calls
	Units      int64 // total units served (bytes, ops, ...)
	BusyNanos  int64 // total virtual time the server spent serving
	QueueNanos int64 // total virtual time requests spent waiting to start
	LastFree   int64 // virtual time at which the server next becomes free
}

// Throughput reports units served per virtual second over the horizon
// [0, horizon]. For a byte-rated resource this is the observed bandwidth.
func (s ResourceStats) Throughput(horizon int64) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.Units) / (float64(horizon) / float64(Second))
}

// Utilization reports the fraction of [0, horizon] the server was busy.
func (s ResourceStats) Utilization(horizon int64) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(s.BusyNanos) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// Resource is a single-queue, single-server station with a fixed service
// rate, shared by many Clocks. It is safe for concurrent use.
type Resource struct {
	name string
	rate float64 // units per virtual second

	mu       sync.Mutex
	nextFree int64
	stats    ResourceStats
	wait     func(waitNanos int64)
}

// NewResource returns a Resource named name that serves ratePerSec units per
// virtual second. It panics if ratePerSec is not positive, because a
// zero-rate server would deadlock every caller.
func NewResource(name string, ratePerSec float64) *Resource {
	if ratePerSec <= 0 {
		panic(fmt.Sprintf("simclock: resource %q must have positive rate, got %g", name, ratePerSec))
	}
	return &Resource{name: name, rate: ratePerSec, stats: ResourceStats{Name: name}}
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// Rate reports the configured service rate in units per virtual second.
func (r *Resource) Rate() float64 { return r.rate }

// ServiceTime reports the uncontended virtual nanoseconds needed to serve
// units.
func (r *Resource) ServiceTime(units int64) int64 {
	return int64(float64(units) / r.rate * float64(Second))
}

// UseAt requests service of units starting no earlier than virtual time now,
// and returns the virtual completion time. If the server is busy, the
// request queues (FIFO in call order).
func (r *Resource) UseAt(now, units int64) int64 {
	if units <= 0 {
		return now
	}
	dur := r.ServiceTime(units)
	r.mu.Lock()
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	done := start + dur
	r.nextFree = done
	r.stats.Requests++
	r.stats.Units += units
	r.stats.BusyNanos += dur
	r.stats.QueueNanos += start - now
	r.stats.LastFree = done
	wait := r.wait
	r.mu.Unlock()
	if wait != nil {
		wait(start - now)
	}
	return done
}

// Use charges service of units to clock c, advancing c to the completion
// time (queueing delay included).
func (r *Resource) Use(c *Clock, units int64) {
	c.AdvanceTo(r.UseAt(c.Now(), units))
}

// OccupyAt queues a fixed-duration occupancy of the server (a device-side
// fsync, a fixed per-request setup phase) starting no earlier than virtual
// time now, and returns the virtual completion time. It differs from UseAt
// only in that the service time is given directly instead of derived from a
// unit count, and no units are accounted — Stats.Units keeps meaning
// "payload served". Concurrent occupancies serialize FIFO exactly like unit
// service; that is the point: a log device runs one fsync at a time, so
// concurrent per-transaction flushes queue behind each other in virtual time
// even though their payload bytes are tiny.
func (r *Resource) OccupyAt(now, nanos int64) int64 {
	if nanos <= 0 {
		return now
	}
	r.mu.Lock()
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	done := start + nanos
	r.nextFree = done
	r.stats.Requests++
	r.stats.BusyNanos += nanos
	r.stats.QueueNanos += start - now
	r.stats.LastFree = done
	wait := r.wait
	r.mu.Unlock()
	if wait != nil {
		wait(start - now)
	}
	return done
}

// Occupy charges a fixed-duration occupancy to clock c, advancing c to the
// completion time (queueing delay included).
func (r *Resource) Occupy(c *Clock, nanos int64) {
	c.AdvanceTo(r.OccupyAt(c.Now(), nanos))
}

// SetWaitObserver installs fn to be called with each request's queueing wait
// (virtual nanoseconds; zero when the server was idle). Install before the
// resource sees traffic. fn runs on the requesting goroutine outside the
// resource's lock and must not call back into the Resource; observability
// sinks (e.g. an obs.Histogram, which is all-atomic) are the intended use.
func (r *Resource) SetWaitObserver(fn func(waitNanos int64)) {
	r.mu.Lock()
	r.wait = fn
	r.mu.Unlock()
}

// Stats returns a snapshot of the resource's counters.
func (r *Resource) Stats() ResourceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Reset clears the accounting counters and frees the server immediately.
// Use between experiment phases that reuse a topology.
func (r *Resource) Reset() {
	r.mu.Lock()
	r.nextFree = 0
	r.stats = ResourceStats{Name: r.name}
	r.mu.Unlock()
}
