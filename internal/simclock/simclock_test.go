package simclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(5 * Microsecond)
	if c.Now() != 5000 {
		t.Fatalf("after advance: %d, want 5000", c.Now())
	}
	c.Advance(-100)
	if c.Now() != 5000 {
		t.Fatalf("negative advance moved clock to %d", c.Now())
	}
	c.AdvanceTo(4000)
	if c.Now() != 5000 {
		t.Fatalf("AdvanceTo(past) moved clock to %d", c.Now())
	}
	c.AdvanceTo(9000)
	if c.Now() != 9000 {
		t.Fatalf("AdvanceTo(future): %d, want 9000", c.Now())
	}
}

func TestClockNewAtAndSeconds(t *testing.T) {
	c := NewAt(2 * Second)
	if got := c.Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %g, want 2.0", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Property: any sequence of Advance/AdvanceTo never decreases Now.
	f := func(steps []int64) bool {
		c := New()
		prev := c.Now()
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(s % Second)
			} else {
				c.AdvanceTo(s % Second)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceUncontendedServiceTime(t *testing.T) {
	// 1 GB/s resource: 1000 bytes takes 1000 ns.
	r := NewResource("link", 1e9)
	c := New()
	r.Use(c, 1000)
	if c.Now() != 1000 {
		t.Fatalf("uncontended 1000B at 1GB/s took %d ns, want 1000", c.Now())
	}
}

func TestResourceQueueing(t *testing.T) {
	r := NewResource("nic", 1e9) // 1 byte per ns
	a, b := New(), New()
	r.Use(a, 1000) // a: [0,1000)
	r.Use(b, 500)  // b arrives at 0 but must wait until 1000
	if b.Now() != 1500 {
		t.Fatalf("queued request completed at %d, want 1500", b.Now())
	}
	st := r.Stats()
	if st.Requests != 2 || st.Units != 1500 {
		t.Fatalf("stats = %+v", st)
	}
	if st.QueueNanos != 1000 {
		t.Fatalf("queue time %d, want 1000", st.QueueNanos)
	}
}

func TestResourceZeroUnits(t *testing.T) {
	r := NewResource("x", 100)
	c := NewAt(42)
	r.Use(c, 0)
	if c.Now() != 42 {
		t.Fatalf("zero-unit use moved clock to %d", c.Now())
	}
	if r.Stats().Requests != 0 {
		t.Fatal("zero-unit use was counted")
	}
}

func TestResourcePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource(rate=0) did not panic")
		}
	}()
	NewResource("bad", 0)
}

func TestResourceReset(t *testing.T) {
	r := NewResource("r", 1e9)
	c := New()
	r.Use(c, 5000)
	r.Reset()
	st := r.Stats()
	if st.Requests != 0 || st.Units != 0 || st.BusyNanos != 0 {
		t.Fatalf("after reset: %+v", st)
	}
	c2 := New()
	r.Use(c2, 100)
	if c2.Now() != 100 {
		t.Fatalf("post-reset request queued behind stale state: done at %d", c2.Now())
	}
}

func TestResourceStatsThroughputUtilization(t *testing.T) {
	r := NewResource("bw", 2e9) // 2 GB/s
	c := New()
	r.Use(c, 1_000_000) // 0.5 ms busy
	st := r.Stats()
	horizon := Millisecond
	if got := st.Utilization(horizon); got < 0.49 || got > 0.51 {
		t.Fatalf("utilization = %g, want ~0.5", got)
	}
	if got := st.Throughput(horizon); got < 0.99e9 || got > 1.01e9 {
		t.Fatalf("throughput = %g, want ~1e9", got)
	}
	if st.Utilization(0) != 0 || st.Throughput(0) != 0 {
		t.Fatal("zero horizon must report zero")
	}
}

func TestResourceConcurrentUseConservesWork(t *testing.T) {
	// Property: under concurrent use, total busy time equals sum of service
	// demands and completions never overlap (nextFree is consistent).
	r := NewResource("shared", 1e9)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := New()
			for i := 0; i < per; i++ {
				r.Use(c, 100)
			}
		}()
	}
	wg.Wait()
	st := r.Stats()
	wantBusy := int64(workers * per * 100) // 100 bytes = 100 ns each
	if st.BusyNanos != wantBusy {
		t.Fatalf("busy %d, want %d", st.BusyNanos, wantBusy)
	}
	if st.LastFree < wantBusy {
		t.Fatalf("lastFree %d < total busy %d: overlapping service", st.LastFree, wantBusy)
	}
}

func TestMultiResourceParallelism(t *testing.T) {
	m := NewMultiResource("cpu", 2, 1e9)
	a, b, c := New(), New(), New()
	m.Use(a, 1000) // server 0: [0,1000)
	m.Use(b, 1000) // server 1: [0,1000)
	if a.Now() != 1000 || b.Now() != 1000 {
		t.Fatalf("two parallel requests: %d, %d; want 1000, 1000", a.Now(), b.Now())
	}
	m.Use(c, 1000) // must queue: [1000,2000)
	if c.Now() != 2000 {
		t.Fatalf("third request on 2-server station done at %d, want 2000", c.Now())
	}
}

func TestMultiResourcePicksEarliestServer(t *testing.T) {
	m := NewMultiResource("mc", 2, 1e9)
	a := New()
	m.Use(a, 2000) // server0 busy until 2000
	b := New()
	m.Use(b, 100) // server1: [0,100)
	c := NewAt(150)
	m.Use(c, 100) // server1 free at 100 -> starts 150, done 250
	if c.Now() != 250 {
		t.Fatalf("request done at %d, want 250", c.Now())
	}
}

func TestMultiResourceResetAndStats(t *testing.T) {
	m := NewMultiResource("mm", 3, 1e6)
	if m.Servers() != 3 {
		t.Fatalf("servers = %d", m.Servers())
	}
	clk := New()
	m.Use(clk, 10)
	if m.Stats().Requests != 1 {
		t.Fatal("request not counted")
	}
	m.Reset()
	if m.Stats().Requests != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestMultiResourceZeroUnitsAndPanics(t *testing.T) {
	m := NewMultiResource("m", 1, 1)
	c := NewAt(7)
	m.Use(c, 0)
	if c.Now() != 7 {
		t.Fatal("zero-unit use advanced clock")
	}
	for _, f := range []func(){
		func() { NewMultiResource("k0", 0, 1) },
		func() { NewMultiResource("r0", 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad MultiResource args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestServiceTime(t *testing.T) {
	r := NewResource("s", 12e9) // 12 GB/s NIC
	if got := r.ServiceTime(12_000); got != 1000 {
		t.Fatalf("ServiceTime(12000B @12GB/s) = %d ns, want 1000", got)
	}
	if r.Rate() != 12e9 || r.Name() != "s" {
		t.Fatal("accessors wrong")
	}
}
