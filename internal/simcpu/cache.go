// Package simcpu models a per-node CPU cache over simulated memory devices.
//
// The paper's CXL 2.0 coherency protocol (§3.3) is software-managed: hardware
// provides no cross-host invalidation, so a node that cached lines of a page
// will read stale data after another node updates the page in CXL memory,
// unless the database-level protocol flushes/invalidates at the right
// moments. To make that protocol falsifiable in simulation, this cache is
// functional: it stores actual copies of line data. Reads served from the
// cache return the cached copy — which is stale if the underlying device
// changed — and dirty lines are invisible to other nodes until written back
// (by eviction or clflush).
//
// The cache is write-back, write-allocate (read-for-ownership on a write
// miss), with LRU replacement and 64-byte lines. Costs: a per-access hit
// latency, a device-profile line fetch on miss, and a device-profile line
// write on write-back. Flush models clflush: write back dirty lines and
// invalidate the range. Drop models power loss: cached dirty data is gone.
package simcpu

import (
	"container/list"
	"fmt"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simmem"
)

// LineSize is the cache-line size in bytes.
const LineSize = simmem.LineSize

type lineKey struct {
	dev  *simmem.Device
	addr int64 // absolute line-aligned device offset
}

type line struct {
	key   lineKey
	data  [LineSize]byte
	dirty bool
	elem  *list.Element
}

// Stats counts cache events and traffic since the last reset.
type Stats struct {
	Hits         int64
	Misses       int64
	WriteBacks   int64 // dirty-line evictions + flushed dirty lines
	Flushed      int64 // lines invalidated by Flush
	BytesFetched int64 // device bytes read on misses
	BytesWritten int64 // device bytes written on write-backs
}

// Cache is one node's CPU cache. Safe for concurrent use by the node's
// worker threads.
type Cache struct {
	name       string
	capacity   int // max lines
	hitLatency int64

	mu    chan struct{} // 1-slot semaphore: avoids lock-order issues with device mutexes
	lines map[lineKey]*line
	lru   *list.List // front = most recent
	stats Stats
	link  Interconnect   // optional per-host interconnect charged per fill/write-back
	inj   fault.Injector // optional fault injector; may be nil
	// domain, when set, provides CXL 3.0 hardware coherency across the
	// domain's caches (see domain.go). Nil = CXL 2.0 behaviour: no
	// inter-host coherency, software protocol required.
	domain *Domain
}

// New returns a cache holding capacityBytes of line data with the given
// per-access hit latency in virtual nanoseconds. It panics if capacityBytes
// is smaller than one line.
func New(name string, capacityBytes int64, hitLatency int64) *Cache {
	if capacityBytes < LineSize {
		panic(fmt.Sprintf("simcpu: cache %q capacity %d smaller than one line", name, capacityBytes))
	}
	c := &Cache{
		name:       name,
		capacity:   int(capacityBytes / LineSize),
		hitLatency: hitLatency,
		mu:         make(chan struct{}, 1),
		lines:      make(map[lineKey]*line),
		lru:        list.New(),
	}
	return c
}

func (c *Cache) lock()   { c.mu <- struct{}{} }
func (c *Cache) unlock() { <-c.mu }

// Interconnect is a charged transport between the CPU and a memory device:
// a single queueing resource (*simclock.Resource) or a composed multi-hop
// route (a cxl topology path). It is charged one line of traffic on every
// fill and write-back.
type Interconnect interface {
	Use(clk *simclock.Clock, units int64)
}

// SetLink attaches a shared interconnect resource (e.g., the host's x16 CXL
// link) that is charged one line of traffic on every fill and write-back.
// Must be called before the cache is shared across goroutines.
func (c *Cache) SetLink(link *simclock.Resource) {
	if link == nil {
		c.link = nil // avoid a typed-nil Interconnect that would be "!= nil"
		return
	}
	c.link = link
}

// SetInterconnect attaches a composed interconnect (e.g., a cross-switch
// route) charged like SetLink's resource. ic must not be a typed nil.
// Must be called before the cache is shared across goroutines.
func (c *Cache) SetInterconnect(ic Interconnect) { c.link = ic }

// SetInjector installs (or, with nil, removes) the fault injector consulted
// at the cache's clflush and eviction write-back points. If the injector
// also implements fault.Orderer, each Flush call asks it whether to process
// its lines in reverse address order.
func (c *Cache) SetInjector(inj fault.Injector) {
	c.lock()
	c.inj = inj
	c.unlock()
}

// Name reports the cache name.
func (c *Cache) Name() string { return c.name }

// CapacityLines reports the capacity in lines.
func (c *Cache) CapacityLines() int { return c.capacity }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats {
	c.lock()
	defer c.unlock()
	return c.stats
}

// ResetStats zeroes the event counters without touching cached data.
func (c *Cache) ResetStats() {
	c.lock()
	c.stats = Stats{}
	c.unlock()
}

// touch moves ln to the MRU position.
func (c *Cache) touch(ln *line) { c.lru.MoveToFront(ln.elem) }

// writeBack writes a dirty line to its device, charging clk.
func (c *Cache) writeBack(clk *simclock.Clock, ln *line) error {
	r := ln.key.dev.WholeRegion()
	if err := r.WriteAt(clk, ln.key.addr, ln.data[:]); err != nil {
		return err
	}
	if c.link != nil {
		c.link.Use(clk, LineSize)
	}
	ln.dirty = false
	c.stats.WriteBacks++
	c.stats.BytesWritten += LineSize
	return nil
}

// evictIfFull makes room for one more line.
func (c *Cache) evictIfFull(clk *simclock.Clock) error {
	for len(c.lines) >= c.capacity {
		e := c.lru.Back()
		if e == nil {
			return fmt.Errorf("simcpu: cache %q full with empty LRU", c.name)
		}
		victim := e.Value.(*line)
		if victim.dirty {
			skip := false
			if c.inj != nil {
				if err := c.inj.Point(fault.OpWriteBack, LineSize); err != nil {
					if !fault.IsDrop(err) {
						return err
					}
					skip = true // dropped write-back: the dirty data is lost
				}
			}
			if !skip {
				if err := c.writeBack(clk, victim); err != nil {
					return err
				}
			}
		}
		c.lru.Remove(e)
		delete(c.lines, victim.key)
	}
	return nil
}

// fill fetches the line containing addr from dev, charging clk the device
// read cost, and installs it. When streamed is set — the immediately
// preceding line of the same access also missed — the hardware prefetcher
// has the line in flight, so only the streaming-rate portion of the cost is
// charged, not the full access latency. This is what lets a sequential
// range scan over CXL run at the device's streaming bandwidth instead of
// one serialized miss per 64 B (the paper's range-select workloads depend
// on it, §2.3/§4.2).
func (c *Cache) fill(clk *simclock.Clock, k lineKey, streamed bool) (*line, error) {
	if err := c.evictIfFull(clk); err != nil {
		return nil, err
	}
	ln := &line{key: k}
	if c.domain != nil {
		// CXL 3.0 mode: a dirty peer copy is written back by hardware
		// before the fill, so the device read below returns fresh data.
		if err := c.domain.supplyLatest(clk, c, k); err != nil {
			return nil, err
		}
	}
	r := k.dev.WholeRegion()
	if streamed {
		if err := r.ReadRaw(k.addr, ln.data[:]); err != nil {
			return nil, err
		}
		prof := k.dev.Profile()
		streamCost := prof.ReadCost(LineSize) - prof.ReadLatency
		if streamCost < 2 {
			streamCost = 2
		}
		clk.Advance(streamCost)
	} else if err := r.ReadAt(clk, k.addr, ln.data[:]); err != nil {
		return nil, err
	}
	if c.link != nil {
		c.link.Use(clk, LineSize)
	}
	ln.elem = c.lru.PushFront(ln)
	c.lines[k] = ln
	c.stats.Misses++
	c.stats.BytesFetched += LineSize
	return ln, nil
}

// get returns the line for k, filling on miss. missed reports whether a
// fill happened (prefetch-chain tracking).
func (c *Cache) get(clk *simclock.Clock, k lineKey, streamed bool) (*line, bool, error) {
	if ln, ok := c.lines[k]; ok {
		c.touch(ln)
		c.stats.Hits++
		clk.Advance(c.hitLatency)
		return ln, false, nil
	}
	ln, err := c.fill(clk, k, streamed)
	return ln, true, err
}

// lineRange iterates the line-aligned addresses covering [addr, addr+n).
func lineRange(addr int64, n int) (first, last int64) {
	first = addr &^ (LineSize - 1)
	last = (addr + int64(n) - 1) &^ (LineSize - 1)
	return first, last
}

// Read reads len(buf) bytes at off within region, through the cache.
func (c *Cache) Read(clk *simclock.Clock, region *simmem.Region, off int64, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if off < 0 || off+int64(len(buf)) > region.Size() {
		return fmt.Errorf("simcpu: cached read [%d,%d) out of region bounds [0,%d)", off, off+int64(len(buf)), region.Size())
	}
	c.lock()
	defer c.unlock()
	dev := region.Device()
	addr := region.Base() + off
	first, last := lineRange(addr, len(buf))
	prevMiss := false
	for la := first; la <= last; la += LineSize {
		ln, missed, err := c.get(clk, lineKey{dev, la}, prevMiss)
		if err != nil {
			return err
		}
		prevMiss = missed
		// Intersect [addr, addr+len) with [la, la+LineSize).
		lo, hi := addr, addr+int64(len(buf))
		if la > lo {
			lo = la
		}
		if la+LineSize < hi {
			hi = la + LineSize
		}
		copy(buf[lo-addr:hi-addr], ln.data[lo-la:hi-la])
	}
	return nil
}

// Write writes data at off within region, through the cache (write-back,
// write-allocate). The device is NOT updated until eviction or Flush.
func (c *Cache) Write(clk *simclock.Clock, region *simmem.Region, off int64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if off < 0 || off+int64(len(data)) > region.Size() {
		return fmt.Errorf("simcpu: cached write [%d,%d) out of region bounds [0,%d)", off, off+int64(len(data)), region.Size())
	}
	c.lock()
	dev := region.Device()
	addr := region.Base() + off
	first, last := lineRange(addr, len(data))
	var written []lineKey
	prevMiss := false
	for la := first; la <= last; la += LineSize {
		k := lineKey{dev, la}
		ln, missed, err := c.get(clk, k, prevMiss)
		if err != nil {
			c.unlock()
			return err
		}
		prevMiss = missed
		lo, hi := addr, addr+int64(len(data))
		if la > lo {
			lo = la
		}
		if la+LineSize < hi {
			hi = la + LineSize
		}
		copy(ln.data[lo-la:hi-la], data[lo-addr:hi-addr])
		ln.dirty = true
		if c.domain != nil {
			written = append(written, k)
		}
	}
	c.unlock()
	// CXL 3.0 mode: every store back-invalidates peer copies of the line.
	for _, k := range written {
		if err := c.domain.invalidatePeers(clk, c, k); err != nil {
			return err
		}
	}
	return nil
}

// Flush models clflush over [off, off+n) within region: dirty lines are
// written back to the device, then all lines in the range are invalidated.
// Subsequent reads fetch fresh data from the device. This is the primitive
// the paper's protocol issues on write-lock release (publish) and on
// observing a set invalid flag (discard possibly-stale lines).
func (c *Cache) Flush(clk *simclock.Clock, region *simmem.Region, off int64, n int) error {
	if n <= 0 {
		return nil
	}
	if off < 0 || off+int64(n) > region.Size() {
		return fmt.Errorf("simcpu: flush [%d,%d) out of region bounds [0,%d)", off, off+int64(n), region.Size())
	}
	c.lock()
	defer c.unlock()
	dev := region.Device()
	addr := region.Base() + off
	first, last := lineRange(addr, n)
	rev := false
	if c.inj != nil {
		if err := c.inj.Point(fault.OpFlushRange, int64(n)); err != nil {
			if fault.IsDrop(err) {
				return nil // the whole clflush range is silently lost
			}
			return err
		}
		if ord, ok := c.inj.(fault.Orderer); ok {
			rev = ord.ReverseFlush()
		}
	}
	la, end, step := first, last+LineSize, int64(LineSize)
	if rev {
		la, end, step = last, first-LineSize, -LineSize
	}
	for ; la != end; la += step {
		k := lineKey{dev, la}
		ln, ok := c.lines[k]
		if !ok {
			continue
		}
		if c.inj != nil {
			if err := c.inj.Point(fault.OpFlushLine, LineSize); err != nil {
				if fault.IsDrop(err) {
					continue // lost clflush: the line stays cached and dirty
				}
				return err
			}
		}
		if ln.dirty {
			if err := c.writeBack(clk, ln); err != nil {
				return err
			}
		}
		c.lru.Remove(ln.elem)
		delete(c.lines, k)
		c.stats.Flushed++
		clk.Advance(c.hitLatency) // clflush issue cost per resident line
	}
	return nil
}

// Drop discards every cached line without write-back: the power-loss path.
// Dirty data that was never flushed is lost, exactly as on a host crash.
func (c *Cache) Drop() {
	c.lock()
	c.lines = make(map[lineKey]*line)
	c.lru.Init()
	c.unlock()
}

// LinesInRange reports how many cache lines intersecting [off, off+n) of
// region are resident, and how many of those are dirty. The sharing
// protocol's instrumentation uses this to judge publication/invalidation
// flushes: dirty lines surviving a publish flush mean the write is torn,
// resident lines surviving an invalidation flush mean the copy is stale.
func (c *Cache) LinesInRange(region *simmem.Region, off int64, n int) (resident, dirty int) {
	if n <= 0 {
		return 0, 0
	}
	c.lock()
	defer c.unlock()
	dev := region.Device()
	addr := region.Base() + off
	first, last := lineRange(addr, n)
	for la := first; la <= last; la += LineSize {
		if ln, ok := c.lines[lineKey{dev, la}]; ok {
			resident++
			if ln.dirty {
				dirty++
			}
		}
	}
	return resident, dirty
}

// DirtyLines reports how many cached lines are dirty (test/diagnostic hook).
func (c *Cache) DirtyLines() int {
	c.lock()
	defer c.unlock()
	n := 0
	for _, ln := range c.lines {
		if ln.dirty {
			n++
		}
	}
	return n
}

// ResidentLines reports how many lines are currently cached.
func (c *Cache) ResidentLines() int {
	c.lock()
	defer c.unlock()
	return len(c.lines)
}
