package simcpu

import (
	"bytes"
	"testing"
	"testing/quick"

	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simmem"
)

var prof = simmem.Profile{Name: "cxl", ReadLatency: 549, WriteLatency: 549, ReadStream: 10e9, WriteStream: 10e9}

func newDev(t *testing.T, size int64) *simmem.Device {
	t.Helper()
	return simmem.NewDevice("cxl", size, prof, nil)
}

func TestReadThroughAndHit(t *testing.T) {
	d := newDev(t, 4096)
	r := d.WholeRegion()
	if err := r.WriteRaw(100, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c := New("n1", 1<<20, 5)
	clk := simclock.New()
	buf := make([]byte, 7)
	if err := c.Read(clk, r, 100, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "payload" {
		t.Fatalf("read %q", buf)
	}
	missCost := clk.Now()
	if missCost < prof.ReadLatency {
		t.Fatalf("miss charged only %d ns", missCost)
	}
	// Second read: hit, cheap.
	if err := c.Read(clk, r, 100, buf); err != nil {
		t.Fatal(err)
	}
	hitCost := clk.Now() - missCost
	if hitCost >= missCost {
		t.Fatalf("hit cost %d not cheaper than miss cost %d", hitCost, missCost)
	}
	st := c.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteBackInvisibleUntilFlush(t *testing.T) {
	d := newDev(t, 4096)
	r := d.WholeRegion()
	c := New("n1", 1<<20, 5)
	clk := simclock.New()
	if err := c.Write(clk, r, 0, []byte("dirty!")); err != nil {
		t.Fatal(err)
	}
	// Device must NOT yet see the write (write-back).
	buf := make([]byte, 6)
	if err := r.ReadRaw(0, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, []byte("dirty!")) {
		t.Fatal("write-back cache leaked write to device before flush")
	}
	if c.DirtyLines() != 1 {
		t.Fatalf("dirty lines = %d, want 1", c.DirtyLines())
	}
	if err := c.Flush(clk, r, 0, 6); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadRaw(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("dirty!")) {
		t.Fatalf("after flush device has %q", buf)
	}
	if c.DirtyLines() != 0 || c.ResidentLines() != 0 {
		t.Fatal("flush did not invalidate lines")
	}
}

func TestStaleReadWithoutInvalidation(t *testing.T) {
	// The core hazard the paper's protocol exists to fix: node B cached a
	// line, node A updates the device, B still reads the stale copy until it
	// flushes.
	d := newDev(t, 4096)
	r := d.WholeRegion()
	if err := r.WriteRaw(0, []byte("v1......")); err != nil {
		t.Fatal(err)
	}
	bCache := New("nodeB", 1<<20, 5)
	clk := simclock.New()
	buf := make([]byte, 8)
	if err := bCache.Read(clk, r, 0, buf); err != nil {
		t.Fatal(err)
	}
	// Node A updates CXL directly (its own cache flushed).
	if err := r.WriteRaw(0, []byte("v2......")); err != nil {
		t.Fatal(err)
	}
	if err := bCache.Read(clk, r, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "v1......" {
		t.Fatalf("expected stale read v1, got %q — cache is not functional", buf)
	}
	// After invalidation (clflush of clean lines), B sees v2.
	if err := bCache.Flush(clk, r, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := bCache.Read(clk, r, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "v2......" {
		t.Fatalf("after invalidation got %q, want v2", buf)
	}
}

func TestEvictionWritesBackDirtyLine(t *testing.T) {
	d := newDev(t, 1<<16)
	r := d.WholeRegion()
	c := New("small", 2*LineSize, 5) // 2 lines
	clk := simclock.New()
	if err := c.Write(clk, r, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Touch two more lines: the dirty line 0 gets evicted and written back.
	buf := make([]byte, 1)
	if err := c.Read(clk, r, 128, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(clk, r, 256, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := r.ReadRaw(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("evicted dirty line not written back: %v", got)
	}
	if c.Stats().WriteBacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().WriteBacks)
	}
	if c.ResidentLines() != 2 {
		t.Fatalf("resident = %d, want 2", c.ResidentLines())
	}
}

func TestLRUOrder(t *testing.T) {
	d := newDev(t, 1<<16)
	r := d.WholeRegion()
	c := New("lru", 2*LineSize, 5)
	clk := simclock.New()
	buf := make([]byte, 1)
	// Fill lines 0 and 1; touch 0 again; fill 2 -> 1 must be evicted.
	c.Read(clk, r, 0, buf)
	c.Read(clk, r, 64, buf)
	c.Read(clk, r, 0, buf)
	c.Read(clk, r, 128, buf)
	st := c.Stats()
	// Line 0 should still be resident (hit on next read).
	before := st.Hits
	c.Read(clk, r, 0, buf)
	if c.Stats().Hits != before+1 {
		t.Fatal("LRU evicted the recently-used line")
	}
	// Line 1 should miss.
	beforeMiss := c.Stats().Misses
	c.Read(clk, r, 64, buf)
	if c.Stats().Misses != beforeMiss+1 {
		t.Fatal("LRU kept the least-recently-used line")
	}
}

func TestDropLosesDirtyData(t *testing.T) {
	d := newDev(t, 4096)
	r := d.WholeRegion()
	if err := r.WriteRaw(0, []byte("original")); err != nil {
		t.Fatal(err)
	}
	c := New("crash", 1<<20, 5)
	clk := simclock.New()
	if err := c.Write(clk, r, 0, []byte("unflshed")); err != nil {
		t.Fatal(err)
	}
	c.Drop() // host crash: cache contents vanish
	buf := make([]byte, 8)
	if err := r.ReadRaw(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Fatalf("device shows %q; dirty data must be lost on crash", buf)
	}
	if c.ResidentLines() != 0 {
		t.Fatal("drop left lines resident")
	}
}

func TestPartialLineWrite(t *testing.T) {
	// Writing 3 bytes in the middle of a line must preserve surrounding
	// bytes (RFO semantics).
	d := newDev(t, 4096)
	r := d.WholeRegion()
	orig := make([]byte, LineSize)
	for i := range orig {
		orig[i] = byte(i)
	}
	if err := r.WriteRaw(0, orig); err != nil {
		t.Fatal(err)
	}
	c := New("rfo", 1<<20, 5)
	clk := simclock.New()
	if err := c.Write(clk, r, 10, []byte{0xAA, 0xBB, 0xCC}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(clk, r, 0, LineSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, LineSize)
	if err := r.ReadRaw(0, got); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, orig...)
	want[10], want[11], want[12] = 0xAA, 0xBB, 0xCC
	if !bytes.Equal(got, want) {
		t.Fatal("partial-line write corrupted surrounding bytes")
	}
}

func TestCrossLineAccess(t *testing.T) {
	d := newDev(t, 4096)
	r := d.WholeRegion()
	data := make([]byte, 3*LineSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := r.WriteRaw(32, data); err != nil {
		t.Fatal(err)
	}
	c := New("span", 1<<20, 5)
	clk := simclock.New()
	got := make([]byte, len(data))
	if err := c.Read(clk, r, 32, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-line read mismatch")
	}
	if c.Stats().Misses != 4 { // 32..32+192 spans 4 lines
		t.Fatalf("misses = %d, want 4", c.Stats().Misses)
	}
}

func TestBoundsErrors(t *testing.T) {
	d := newDev(t, 256)
	r := d.WholeRegion()
	c := New("b", 1<<20, 5)
	clk := simclock.New()
	if err := c.Read(clk, r, 250, make([]byte, 10)); err == nil {
		t.Fatal("out-of-bounds cached read accepted")
	}
	if err := c.Write(clk, r, -1, []byte{1}); err == nil {
		t.Fatal("negative cached write accepted")
	}
	if err := c.Flush(clk, r, 250, 10); err == nil {
		t.Fatal("out-of-bounds flush accepted")
	}
	if err := c.Flush(clk, r, 0, 0); err != nil {
		t.Fatal("zero-length flush should be a no-op")
	}
}

func TestCachedRoundTripProperty(t *testing.T) {
	// Property: write-through-cache then read-through-cache returns the data,
	// and after Flush the device agrees, for arbitrary offsets/payloads.
	d := newDev(t, 1<<16)
	r := d.WholeRegion()
	c := New("prop", 1<<20, 5)
	clk := simclock.New()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off) % (r.Size() - int64(len(data)))
		if o < 0 {
			return true
		}
		if err := c.Write(clk, r, o, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := c.Read(clk, r, o, got); err != nil {
			return false
		}
		if !bytes.Equal(got, data) {
			return false
		}
		if err := c.Flush(clk, r, o, len(data)); err != nil {
			return false
		}
		dev := make([]byte, len(data))
		if err := r.ReadRaw(o, dev); err != nil {
			return false
		}
		return bytes.Equal(dev, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(capacity<line) did not panic")
		}
	}()
	New("tiny", 32, 1)
}

func TestResetStats(t *testing.T) {
	d := newDev(t, 4096)
	c := New("rs", 1<<20, 5)
	clk := simclock.New()
	c.Read(clk, d.WholeRegion(), 0, make([]byte, 8))
	c.ResetStats()
	if st := c.Stats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
	if c.ResidentLines() == 0 {
		t.Fatal("ResetStats dropped cached data")
	}
}

func TestSequentialSpanStreamsAtPrefetchRate(t *testing.T) {
	// A large contiguous read must cost far less than misses * full latency:
	// the prefetcher pipelines all lines after the first.
	d := newDev(t, 1<<20)
	r := d.WholeRegion()
	c := New("stream", 4<<20, 5)
	clk := simclock.New()
	span := make([]byte, 16384) // 256 lines
	if err := c.Read(clk, r, 0, span); err != nil {
		t.Fatal(err)
	}
	serialized := int64(256) * prof.ReadLatency
	if clk.Now() >= serialized/4 {
		t.Fatalf("256-line sequential read cost %d ns; prefetcher absent (serialized would be %d)", clk.Now(), serialized)
	}
	if clk.Now() < prof.ReadLatency {
		t.Fatalf("sequential read cost %d ns; must include at least one full miss", clk.Now())
	}
	// Random single-line misses still pay full latency each.
	c2 := New("rand", 4<<20, 5)
	clk2 := simclock.New()
	var b [8]byte
	for i := 0; i < 10; i++ {
		if err := c2.Read(clk2, r, int64(i)*4096, b[:]); err != nil {
			t.Fatal(err)
		}
	}
	if clk2.Now() < 10*prof.ReadLatency {
		t.Fatalf("10 random misses cost %d ns; prefetcher fired across discontiguous lines", clk2.Now())
	}
}
