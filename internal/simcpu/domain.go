package simcpu

import (
	"sync"

	"polarcxlmem/internal/simclock"
)

// Domain models CXL 3.0 hardware cache coherency across hosts: a snoop
// directory in the switch tracks which host caches which line; a store
// back-invalidates peer copies, and a load miss is served from a peer's
// dirty copy (which the hardware writes back first). The paper's software
// protocol (§3.3) exists precisely because CXL 2.0 switches lack this; the
// cxl3 projection experiment uses Domain to ask how much of the software
// protocol's cost the next hardware generation removes.
//
// Costs: each back-invalidation and each dirty-peer fetch charges snoopNs
// to the clock of the operation that triggered it (the coherency traffic
// rides the same switch the data does).
type Domain struct {
	snoopNs int64

	mu     sync.Mutex
	caches []*Cache
}

// NewDomain builds a coherency domain; snoopNs is the per-peer
// back-invalidation / snoop-fetch latency (0 selects the switch-hop
// default).
func NewDomain(snoopNs int64) *Domain {
	if snoopNs == 0 {
		snoopNs = 250 // one switch hop: flit there, ack back
	}
	return &Domain{snoopNs: snoopNs}
}

// Attach joins c to the domain. A cache belongs to at most one domain;
// attach before use.
func (d *Domain) Attach(c *Cache) {
	d.mu.Lock()
	d.caches = append(d.caches, c)
	c.domain = d
	d.mu.Unlock()
}

// peers returns every cache in the domain except owner.
func (d *Domain) peers(owner *Cache) []*Cache {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Cache, 0, len(d.caches)-1)
	for _, c := range d.caches {
		if c != owner {
			out = append(out, c)
		}
	}
	return out
}

// invalidatePeers drops k from every peer cache (back-invalidation on a
// store). Dirty peer copies cannot exist when the database-level page lock
// is held correctly, but hardware is defensive: a dirty peer copy is
// written back first so no update is lost.
func (d *Domain) invalidatePeers(clk *simclock.Clock, owner *Cache, k lineKey) error {
	for _, peer := range d.peers(owner) {
		peer.lock()
		ln, ok := peer.lines[k]
		if !ok {
			peer.unlock()
			continue
		}
		if ln.dirty {
			if err := peer.writeBack(clk, ln); err != nil {
				peer.unlock()
				return err
			}
		}
		peer.lru.Remove(ln.elem)
		delete(peer.lines, k)
		peer.unlock()
		clk.Advance(d.snoopNs)
	}
	return nil
}

// supplyLatest makes the device current for k before a fill: if a peer
// holds the line dirty, the hardware writes it back (cache-to-cache with
// memory update) and charges one snoop.
func (d *Domain) supplyLatest(clk *simclock.Clock, owner *Cache, k lineKey) error {
	for _, peer := range d.peers(owner) {
		peer.lock()
		ln, ok := peer.lines[k]
		if ok && ln.dirty {
			err := peer.writeBack(clk, ln)
			peer.unlock()
			if err != nil {
				return err
			}
			clk.Advance(d.snoopNs)
			return nil
		}
		peer.unlock()
	}
	return nil
}
