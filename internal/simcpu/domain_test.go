package simcpu

import (
	"testing"

	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simmem"
)

func TestDomainBackInvalidationOnStore(t *testing.T) {
	d := simmem.NewDevice("cxl", 4096, prof, nil)
	r := d.WholeRegion()
	r.WriteRaw(0, []byte("v1......"))
	dom := NewDomain(0)
	a := New("nodeA", 1<<20, 5)
	b := New("nodeB", 1<<20, 5)
	dom.Attach(a)
	dom.Attach(b)
	clk := simclock.New()

	buf := make([]byte, 8)
	if err := b.Read(clk, r, 0, buf); err != nil { // B caches the line
		t.Fatal(err)
	}
	if err := a.Write(clk, r, 0, []byte("v2......")); err != nil { // A stores: B's copy must die
		t.Fatal(err)
	}
	if err := b.Read(clk, r, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "v2......" {
		t.Fatalf("hardware coherency failed: B read %q", buf)
	}
}

func TestDomainSuppliesDirtyPeerLine(t *testing.T) {
	// A writes (dirty, NOT flushed); B's read miss must still see A's data:
	// the domain writes the dirty line back before the fill.
	d := simmem.NewDevice("cxl", 4096, prof, nil)
	r := d.WholeRegion()
	dom := NewDomain(0)
	a := New("nodeA", 1<<20, 5)
	b := New("nodeB", 1<<20, 5)
	dom.Attach(a)
	dom.Attach(b)
	clk := simclock.New()

	if err := a.Write(clk, r, 128, []byte("dirtyln!")); err != nil {
		t.Fatal(err)
	}
	// Device itself is stale? No: A's store back-invalidated... B never had
	// the line. The line sits dirty in A.
	buf := make([]byte, 8)
	if err := b.Read(clk, r, 128, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "dirtyln!" {
		t.Fatalf("B read %q; dirty peer line not supplied", buf)
	}
	// And the device is now current (hardware wrote it back).
	dev := make([]byte, 8)
	r.ReadRaw(128, dev)
	if string(dev) != "dirtyln!" {
		t.Fatal("device not updated by snoop write-back")
	}
}

func TestDomainChargesSnoopLatency(t *testing.T) {
	d := simmem.NewDevice("cxl", 4096, prof, nil)
	r := d.WholeRegion()
	dom := NewDomain(1000)
	a := New("a", 1<<20, 5)
	b := New("b", 1<<20, 5)
	dom.Attach(a)
	dom.Attach(b)
	clk := simclock.New()
	buf := make([]byte, 8)
	b.Read(clk, r, 0, buf)
	before := clk.Now()
	if err := a.Write(clk, r, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// The write includes at least one 1000ns snoop (B held the line).
	if clk.Now()-before < 1000 {
		t.Fatalf("store charged only %d ns; snoop missing", clk.Now()-before)
	}
	// A second write to the now-exclusive line must not pay the snoop.
	before = clk.Now()
	if err := a.Write(clk, r, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if clk.Now()-before >= 1000 {
		t.Fatalf("exclusive store paid a snoop: %d ns", clk.Now()-before)
	}
}

func TestDomainUnattachedCacheUnaffected(t *testing.T) {
	// A cache outside the domain keeps CXL 2.0 semantics (stale reads).
	d := simmem.NewDevice("cxl", 4096, prof, nil)
	r := d.WholeRegion()
	r.WriteRaw(0, []byte("v1......"))
	dom := NewDomain(0)
	a := New("in-domain", 1<<20, 5)
	dom.Attach(a)
	outsider := New("outsider", 1<<20, 5)
	clk := simclock.New()
	buf := make([]byte, 8)
	outsider.Read(clk, r, 0, buf)
	a.Write(clk, r, 0, []byte("v2......"))
	a.Flush(clk, r, 0, 8)
	outsider.Read(clk, r, 0, buf)
	if string(buf) != "v1......" {
		t.Fatalf("outsider saw %q; expected the stale CXL 2.0 read", buf)
	}
}

func TestDomainThreeWaySharing(t *testing.T) {
	// Three caches ping-pong a counter line; every increment must observe
	// the previous one with no software protocol at all.
	d := simmem.NewDevice("cxl", 4096, prof, nil)
	r := d.WholeRegion()
	dom := NewDomain(0)
	caches := []*Cache{New("a", 1<<20, 5), New("b", 1<<20, 5), New("c", 1<<20, 5)}
	for _, c := range caches {
		dom.Attach(c)
	}
	clk := simclock.New()
	for i := 0; i < 30; i++ {
		c := caches[i%3]
		var b [1]byte
		if err := c.Read(clk, r, 256, b[:]); err != nil {
			t.Fatal(err)
		}
		b[0]++
		if err := c.Write(clk, r, 256, b[:]); err != nil {
			t.Fatal(err)
		}
	}
	var b [1]byte
	caches[0].Read(clk, r, 256, b[:])
	if b[0] != 30 {
		t.Fatalf("counter = %d, want 30 (lost update under hw coherency)", b[0])
	}
}
