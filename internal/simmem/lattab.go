package simmem

import (
	"fmt"
	"sort"

	"polarcxlmem/internal/simclock"
)

// LatencyTable maps transfer sizes to calibrated latencies with linear
// interpolation between calibration points and linear extrapolation beyond
// the last point. The paper's Table 2 gives five calibration points per
// direction per interconnect; a table echoes them exactly and stays sane in
// between.
type LatencyTable struct {
	sizes []int64 // ascending
	nanos []int64
}

// NewLatencyTable builds a table from parallel size/latency slices. It
// panics on malformed calibration data (empty, unsorted, or mismatched),
// since calibration constants are compiled in.
func NewLatencyTable(sizes, nanos []int64) *LatencyTable {
	if len(sizes) == 0 || len(sizes) != len(nanos) {
		panic(fmt.Sprintf("simmem: latency table needs matched non-empty slices, got %d/%d", len(sizes), len(nanos)))
	}
	if !sort.SliceIsSorted(sizes, func(i, j int) bool { return sizes[i] < sizes[j] }) {
		panic("simmem: latency table sizes must be strictly ascending")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] == sizes[i-1] {
			panic("simmem: latency table sizes must be strictly ascending")
		}
	}
	return &LatencyTable{sizes: append([]int64(nil), sizes...), nanos: append([]int64(nil), nanos...)}
}

// Cost reports the calibrated latency in nanoseconds for a transfer of n
// bytes. Sizes below the first point scale the first point's per-byte cost;
// sizes beyond the last extrapolate along the final segment's slope.
func (t *LatencyTable) Cost(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if n <= t.sizes[0] {
		// Fixed overhead dominates small transfers: charge the first point.
		return t.nanos[0]
	}
	last := len(t.sizes) - 1
	if n >= t.sizes[last] {
		if last == 0 {
			return t.nanos[0]
		}
		slope := float64(t.nanos[last]-t.nanos[last-1]) / float64(t.sizes[last]-t.sizes[last-1])
		return t.nanos[last] + int64(slope*float64(n-t.sizes[last]))
	}
	i := sort.Search(len(t.sizes), func(i int) bool { return t.sizes[i] >= n })
	// t.sizes[i-1] < n < t.sizes[i]
	frac := float64(n-t.sizes[i-1]) / float64(t.sizes[i]-t.sizes[i-1])
	return t.nanos[i-1] + int64(frac*float64(t.nanos[i]-t.nanos[i-1]))
}

// Charge advances clk by the calibrated cost of an n-byte transfer.
func (t *LatencyTable) Charge(clk *simclock.Clock, n int64) {
	clk.Advance(t.Cost(n))
}
