package simmem

import (
	"testing"

	"polarcxlmem/internal/simclock"
)

func TestLatencyTableCalibrationPoints(t *testing.T) {
	tab := NewLatencyTable([]int64{64, 512, 1024}, []int64{100, 200, 400})
	for _, c := range []struct{ n, want int64 }{
		{64, 100}, {512, 200}, {1024, 400},
	} {
		if got := tab.Cost(c.n); got != c.want {
			t.Errorf("Cost(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLatencyTableInterpolation(t *testing.T) {
	tab := NewLatencyTable([]int64{100, 200}, []int64{1000, 2000})
	if got := tab.Cost(150); got != 1500 {
		t.Fatalf("midpoint = %d, want 1500", got)
	}
	// Below the first point: charge the first point (fixed overhead).
	if got := tab.Cost(10); got != 1000 {
		t.Fatalf("below-first = %d, want 1000", got)
	}
	// Beyond the last: extrapolate along the final slope (10 ns/B).
	if got := tab.Cost(300); got != 3000 {
		t.Fatalf("extrapolated = %d, want 3000", got)
	}
	if tab.Cost(0) != 0 || tab.Cost(-5) != 0 {
		t.Fatal("non-positive sizes must cost 0")
	}
}

func TestLatencyTableSinglePoint(t *testing.T) {
	tab := NewLatencyTable([]int64{64}, []int64{500})
	if tab.Cost(64) != 500 || tab.Cost(1) != 500 || tab.Cost(100000) != 500 {
		t.Fatal("single-point table must be constant")
	}
}

func TestLatencyTableCharge(t *testing.T) {
	tab := NewLatencyTable([]int64{64}, []int64{750})
	clk := simclock.New()
	tab.Charge(clk, 64)
	if clk.Now() != 750 {
		t.Fatalf("charged %d", clk.Now())
	}
}

func TestLatencyTablePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLatencyTable(nil, nil) },
		func() { NewLatencyTable([]int64{1, 2}, []int64{1}) },
		func() { NewLatencyTable([]int64{2, 1}, []int64{1, 2}) },
		func() { NewLatencyTable([]int64{1, 1}, []int64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("malformed table accepted")
				}
			}()
			f()
		}()
	}
}

func TestRegionDeviceAccessor(t *testing.T) {
	d := NewDevice("x", 128, Profile{}, nil)
	if d.WholeRegion().Device() != d {
		t.Fatal("Device accessor broken")
	}
}
