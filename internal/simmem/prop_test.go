package simmem

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// Property tests for the Region/SubRegion window arithmetic. The bounds
// predicates are written subtraction-form precisely so that off+size on two
// huge int64 operands cannot wrap negative and slip past the check — these
// tests pin the edges and then fuzz the predicate against a model.

func propDevice(t *testing.T, size int64) *Device {
	t.Helper()
	return NewDevice("prop", size, Profile{}, nil)
}

func TestRegionBoundsEdges(t *testing.T) {
	const S = 4096
	d := propDevice(t, S)
	cases := []struct {
		name      string
		off, size int64
		ok        bool
	}{
		{"whole", 0, S, true},
		{"empty-at-start", 0, 0, true},
		{"empty-at-end", S, 0, true},
		{"last-byte", S - 1, 1, true},
		{"one-past-end", S, 1, false},
		{"size-overrun", 0, S + 1, false},
		{"off-overrun", S + 1, 0, false},
		{"negative-off", -1, 1, false},
		{"negative-size", 1, -1, false},
		{"both-huge-overflow", 1 << 62, 1 << 62, false},
		{"sum-wraps-negative", math.MaxInt64, math.MaxInt64, false},
		{"huge-size-alone", 0, math.MaxInt64, false},
		{"huge-off-alone", math.MaxInt64, 0, false},
	}
	for _, tc := range cases {
		t.Run("region/"+tc.name, func(t *testing.T) {
			_, err := d.Region(tc.off, tc.size)
			if (err == nil) != tc.ok {
				t.Fatalf("Region(%d, %d): err=%v, want ok=%v", tc.off, tc.size, err, tc.ok)
			}
		})
	}
	// The same table must hold for SubRegion of a whole-device view (the
	// region size equals the device size, so validity is identical).
	whole := d.WholeRegion()
	for _, tc := range cases {
		t.Run("subregion/"+tc.name, func(t *testing.T) {
			_, err := whole.SubRegion(tc.off, tc.size)
			if (err == nil) != tc.ok {
				t.Fatalf("SubRegion(%d, %d): err=%v, want ok=%v", tc.off, tc.size, err, tc.ok)
			}
		})
	}
	// And for raw access checks (n is an int length, so only the reachable
	// subset applies).
	buf1 := []byte{0xFF}
	if err := whole.WriteRaw(S-1, buf1); err != nil {
		t.Fatalf("write of last byte: %v", err)
	}
	if err := whole.WriteRaw(S, buf1); err == nil {
		t.Fatal("write one past end must fail")
	}
	if err := whole.ReadRaw(0, make([]byte, S)); err != nil {
		t.Fatalf("full-size read: %v", err)
	}
	if err := whole.ReadRaw(1, make([]byte, S)); err == nil {
		t.Fatal("full-size read at off 1 must fail")
	}
	if err := whole.ReadRaw(1<<62, buf1); err == nil {
		t.Fatal("huge-offset read must fail")
	}
}

// TestSubRegionAliasing verifies that overlapping views are views — writes
// through one window are visible through every other window (and the raw
// device) at the correct translated offsets.
func TestSubRegionAliasing(t *testing.T) {
	d := propDevice(t, 1<<16)
	parent, err := d.Region(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := parent.SubRegion(50, 100) // device [150, 250)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Base() != 150 || sub.Size() != 100 {
		t.Fatalf("sub base=%d size=%d, want 150/100", sub.Base(), sub.Size())
	}
	overlap, err := parent.SubRegion(120, 60) // device [220, 280): overlaps sub's tail
	if err != nil {
		t.Fatal(err)
	}

	pat := bytes.Repeat([]byte{0xAB}, 100)
	if err := sub.WriteRaw(0, pat); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if err := parent.ReadRaw(50, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatal("write through sub not visible through parent")
	}
	if err := d.WholeRegion().ReadRaw(150, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatal("write through sub not visible at device offset 150")
	}
	// Overlap window: its first 30 bytes alias sub's [70,100).
	got30 := make([]byte, 30)
	if err := overlap.ReadRaw(0, got30); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got30, pat[:30]) {
		t.Fatal("overlapping view does not alias the shared bytes")
	}
	// And a write through the overlap window reflects back into sub.
	if err := overlap.WriteRaw(10, []byte{0xCD}); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if err := sub.ReadRaw(80, one); err != nil {
		t.Fatal(err)
	}
	if one[0] != 0xCD {
		t.Fatalf("aliased write lost: %#x", one[0])
	}
}

// TestSubRegionBoundsProperty fuzzes (off, size) pairs — small, edge-
// straddling, and enormous — against the model predicate, and round-trips
// data through every valid window.
func TestSubRegionBoundsProperty(t *testing.T) {
	const S = 1 << 12
	d := propDevice(t, 1<<13)
	region, err := d.Region(512, S) // non-zero base: translation must compose
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20250805))
	genInt := func() int64 {
		switch rng.Intn(6) {
		case 0:
			return rng.Int63n(2*S) - S // around the valid range, incl. negatives
		case 1:
			return []int64{0, 1, S - 1, S, S + 1, -1}[rng.Intn(6)]
		case 2:
			return math.MaxInt64 - rng.Int63n(4)
		case 3:
			return int64(1)<<62 + rng.Int63n(1<<20)
		default:
			return rng.Int63n(S + 1)
		}
	}
	valid, invalid := 0, 0
	for i := 0; i < 5000; i++ {
		off, size := genInt(), genInt()
		want := off >= 0 && size >= 0 && off <= S && size <= S-off
		sub, err := region.SubRegion(off, size)
		if (err == nil) != want {
			t.Fatalf("SubRegion(%d, %d): err=%v, model says valid=%v", off, size, err, want)
		}
		if !want {
			invalid++
			continue
		}
		valid++
		if sub.Base() != region.Base()+off || sub.Size() != size {
			t.Fatalf("SubRegion(%d, %d): base=%d size=%d, want base=%d size=%d",
				off, size, sub.Base(), sub.Size(), region.Base()+off, size)
		}
		if size == 0 || size > 4096 {
			continue
		}
		// Round-trip: bytes written through the window appear at the
		// translated parent offset, and vice versa.
		n := 1 + rng.Intn(int(size))
		woff := rng.Int63n(size - int64(n) + 1)
		pat := make([]byte, n)
		rng.Read(pat)
		if err := sub.WriteRaw(woff, pat); err != nil {
			t.Fatalf("valid window write [%d,+%d) in SubRegion(%d,%d): %v", woff, n, off, size, err)
		}
		got := make([]byte, n)
		if err := region.ReadRaw(off+woff, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pat) {
			t.Fatalf("window write not visible through parent at %d", off+woff)
		}
	}
	if valid < 500 || invalid < 500 {
		t.Fatalf("generator imbalance: %d valid / %d invalid cases — property coverage too thin", valid, invalid)
	}
}
