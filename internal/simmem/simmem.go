// Package simmem models raw memory devices for the PolarCXLMem simulator.
//
// A Device is a byte-addressable memory (local DRAM, a DDR5 module behind the
// CXL switch, an RDMA-exposed remote pool) backed by an ordinary byte slice.
// The slice belongs to the Device object, not to any host object, so memory
// contents survive a simulated host crash exactly as CXL memory behind an
// independently-powered switch does in the paper (§3.2).
//
// Access goes through bounds-checked Region views. A Region is the unit of
// multi-tenant isolation: the CXL memory manager hands each database node a
// Region and no two writable Regions overlap, reproducing the paper's
// offset-based allocation discipline (§3.1, "CXL Memory allocation").
//
// Costed accessors (ReadAt/WriteAt/Load64/Store64) charge a calibrated
// latency + pipelined-bandwidth cost to the caller's virtual clock and, when
// the device has a shared bandwidth resource attached, queue on it. Raw
// accessors exist for substrates (the simulated CPU cache) that implement
// their own cost accounting on top of the device.
package simmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/simclock"
)

// ErrPoweredOff is returned by every access to a device that has lost power
// (Device.PowerOff). Unlike an injected transient fault, it persists until
// PowerOn, which models swapping in REPLACEMENT hardware: contents are
// zeroed, not restored.
var ErrPoweredOff = errors.New("simmem: device is powered off")

// LineSize is the coherence granularity: one CPU cache line.
const LineSize = 64

// Profile describes the timing behaviour of a memory device as seen from a
// host: a fixed per-access latency plus a pipelined streaming rate for the
// body of a larger access. Calibration constants live with the device
// packages (internal/cxl, internal/rdma), sourced from the paper's Tables 1-2.
type Profile struct {
	Name         string
	ReadLatency  int64   // ns charged once per read access
	WriteLatency int64   // ns charged once per write access
	ReadStream   float64 // bytes per second for a read body; 0 = latency only
	WriteStream  float64 // bytes per second for a write body; 0 = latency only
}

// accessCost reports the virtual nanoseconds a single access of n bytes
// costs under the profile, excluding shared-resource queueing.
func accessCost(latency int64, stream float64, n int) int64 {
	c := latency
	if stream > 0 && n > 0 {
		c += int64(float64(n) / stream * float64(simclock.Second))
	}
	return c
}

// ReadCost reports the uncontended cost of reading n bytes.
func (p Profile) ReadCost(n int) int64 { return accessCost(p.ReadLatency, p.ReadStream, n) }

// WriteCost reports the uncontended cost of writing n bytes.
func (p Profile) WriteCost(n int) int64 { return accessCost(p.WriteLatency, p.WriteStream, n) }

// Device is a raw memory device. A single mutex serializes data access so
// that concurrent simulated hosts can touch shared CXL memory safely; the
// timing of concurrent access is governed by the virtual-time resources, not
// by this lock.
type Device struct {
	name string
	mu   sync.RWMutex
	data []byte
	prof Profile
	off  bool                      // powered off: every access fails
	bw   *simclock.Resource        // optional shared bandwidth; may be nil
	inj  fault.Injector            // optional fault injector; may be nil
	obsP atomic.Pointer[deviceObs] // optional metrics sink; may be empty
}

// deviceObs caches the device's counter handles so the raw-access hot path
// pays four atomic adds, not four map lookups.
type deviceObs struct {
	reads, writes         *obs.Counter
	readBytes, writeBytes *obs.Counter
}

// NewDevice allocates a device of size bytes with the given timing profile.
// bw, if non-nil, is a shared bandwidth resource every costed access queues
// on (e.g., the per-host CXL link). It panics on non-positive size, because a
// memory device without capacity is always a configuration bug.
func NewDevice(name string, size int64, prof Profile, bw *simclock.Resource) *Device {
	if size <= 0 {
		panic(fmt.Sprintf("simmem: device %q must have positive size, got %d", name, size))
	}
	return &Device{name: name, data: make([]byte, size), prof: prof, bw: bw}
}

// Name reports the device name.
func (d *Device) Name() string { return d.name }

// Size reports the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.data)) }

// Profile reports the device timing profile.
func (d *Device) Profile() Profile { return d.prof }

// SetInjector installs (or, with nil, removes) the fault injector consulted
// on every raw access to this device. Every costed accessor funnels through
// the raw paths, so one injector covers WriteAt, Store64, and CPU-cache
// write-backs alike.
func (d *Device) SetInjector(inj fault.Injector) {
	d.mu.Lock()
	d.inj = inj
	d.mu.Unlock()
}

func (d *Device) injector() fault.Injector {
	d.mu.RLock()
	inj := d.inj
	d.mu.RUnlock()
	return inj
}

// SetObserver registers the device's access counters with reg
// (mem.<name>.reads / writes / read_bytes / write_bytes). Every accessor —
// costed or raw, including CPU-cache fills and write-backs — funnels through
// the raw paths, so the counters see all device traffic. A nil reg detaches.
func (d *Device) SetObserver(reg *obs.Registry) {
	if reg == nil {
		d.obsP.Store(nil)
		return
	}
	p := "mem." + d.name + "."
	d.obsP.Store(&deviceObs{
		reads:      reg.Counter(p + "reads"),
		writes:     reg.Counter(p + "writes"),
		readBytes:  reg.Counter(p + "read_bytes"),
		writeBytes: reg.Counter(p + "write_bytes"),
	})
}

// PowerOff kills the device: every subsequent access, raw or costed, fails
// with ErrPoweredOff. Contents are retained in the struct but unreachable —
// the failure-domain model for whole-memory-box power loss.
func (d *Device) PowerOff() {
	d.mu.Lock()
	d.off = true
	d.mu.Unlock()
}

// PowerOn restores the device as REPLACEMENT hardware: accesses succeed
// again, but the contents are zeroed. A memory box that loses power loses
// its data; anything durable must be rebuilt from another domain (WAL,
// checkpoint area, surviving replicas).
func (d *Device) PowerOn() {
	d.mu.Lock()
	d.off = false
	for i := range d.data {
		d.data[i] = 0
	}
	d.mu.Unlock()
}

// PoweredOff reports whether the device has lost power.
func (d *Device) PoweredOff() bool {
	d.mu.RLock()
	off := d.off
	d.mu.RUnlock()
	return off
}

// Region returns a bounds-checked view of [off, off+size).
// The bounds test is written subtraction-form so a huge off+size cannot
// overflow int64 and pass.
func (d *Device) Region(off, size int64) (*Region, error) {
	if off < 0 || size < 0 || off > int64(len(d.data)) || size > int64(len(d.data))-off {
		return nil, fmt.Errorf("simmem: region [%d,+%d) out of device %q bounds [0,%d)", off, size, d.name, len(d.data))
	}
	return &Region{dev: d, off: off, size: size}, nil
}

// WholeRegion returns a view of the entire device.
func (d *Device) WholeRegion() *Region {
	return &Region{dev: d, off: 0, size: int64(len(d.data))}
}

// Region is a bounds-checked window onto a Device. Offsets passed to Region
// methods are relative to the region start.
type Region struct {
	dev       *Device
	off, size int64
}

// Size reports the region length in bytes.
func (r *Region) Size() int64 { return r.size }

// Base reports the region's absolute offset within its device. The CXL
// memory manager uses this to hand out device-global addresses.
func (r *Region) Base() int64 { return r.off }

// Device reports the underlying device.
func (r *Region) Device() *Device { return r.dev }

// SubRegion returns a narrower view of [off, off+size) within r.
// Subtraction-form bounds test: off+size on two huge operands must not
// overflow into a passing value.
func (r *Region) SubRegion(off, size int64) (*Region, error) {
	if off < 0 || size < 0 || off > r.size || size > r.size-off {
		return nil, fmt.Errorf("simmem: subregion [%d,+%d) out of region bounds [0,%d)", off, size, r.size)
	}
	return &Region{dev: r.dev, off: r.off + off, size: size}, nil
}

func (r *Region) check(off int64, n int) error {
	if off < 0 || int64(n) < 0 || off > r.size || int64(n) > r.size-off {
		return fmt.Errorf("simmem: access [%d,+%d) out of region bounds [0,%d) on %q", off, n, r.size, r.dev.name)
	}
	return nil
}

// ReadRaw copies region bytes into buf without charging any cost. It is for
// substrates (the CPU cache) that do their own accounting.
func (r *Region) ReadRaw(off int64, buf []byte) error {
	if err := r.check(off, len(buf)); err != nil {
		return err
	}
	// Power loss precedes injection: a dead device receives no operations,
	// so its fault-plan op counters must not advance.
	if r.dev.PoweredOff() {
		return fmt.Errorf("simmem: read %q: %w", r.dev.name, ErrPoweredOff)
	}
	if inj := r.dev.injector(); inj != nil {
		if err := inj.Point(fault.OpMemRead, int64(len(buf))); err != nil {
			if fault.IsDrop(err) {
				return nil // dropped read: buf keeps whatever it held
			}
			return err
		}
	}
	r.dev.mu.RLock()
	copy(buf, r.dev.data[r.off+off:])
	r.dev.mu.RUnlock()
	if o := r.dev.obsP.Load(); o != nil {
		o.reads.Inc()
		o.readBytes.Add(int64(len(buf)))
	}
	return nil
}

// WriteRaw copies data into the region without charging any cost.
func (r *Region) WriteRaw(off int64, data []byte) error {
	if err := r.check(off, len(data)); err != nil {
		return err
	}
	if r.dev.PoweredOff() {
		return fmt.Errorf("simmem: write %q: %w", r.dev.name, ErrPoweredOff)
	}
	if inj := r.dev.injector(); inj != nil {
		if err := inj.Point(fault.OpMemWrite, int64(len(data))); err != nil {
			if fault.IsDrop(err) {
				return nil // silently lost write: device keeps the old bytes
			}
			return err
		}
	}
	r.dev.mu.Lock()
	copy(r.dev.data[r.off+off:], data)
	r.dev.mu.Unlock()
	if o := r.dev.obsP.Load(); o != nil {
		o.writes.Inc()
		o.writeBytes.Add(int64(len(data)))
	}
	return nil
}

// charge applies the device cost for an access of n bytes to clk and queues
// on the shared bandwidth resource when one is attached.
func (r *Region) charge(clk *simclock.Clock, cost int64, n int) {
	clk.Advance(cost)
	if r.dev.bw != nil && n > 0 {
		r.dev.bw.Use(clk, int64(n))
	}
}

// ReadAt reads len(buf) bytes at off, charging the device read cost to clk.
func (r *Region) ReadAt(clk *simclock.Clock, off int64, buf []byte) error {
	if err := r.ReadRaw(off, buf); err != nil {
		return err
	}
	r.charge(clk, r.dev.prof.ReadCost(len(buf)), len(buf))
	return nil
}

// WriteAt writes data at off, charging the device write cost to clk.
func (r *Region) WriteAt(clk *simclock.Clock, off int64, data []byte) error {
	if err := r.WriteRaw(off, data); err != nil {
		return err
	}
	r.charge(clk, r.dev.prof.WriteCost(len(data)), len(data))
	return nil
}

// Load64 reads a little-endian uint64 flag word at off with a single-line
// access cost. The paper's coherency protocol reads invalid/removal flags
// this way (§3.3).
func (r *Region) Load64(clk *simclock.Clock, off int64) (uint64, error) {
	var b [8]byte
	if err := r.ReadRaw(off, b[:]); err != nil {
		return 0, err
	}
	r.charge(clk, r.dev.prof.ReadCost(8), 8)
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Store64 writes a little-endian uint64 flag word at off with a single-line
// access cost — the "single memory store operation on CXL memory" the paper
// says completes within a few hundred nanoseconds (§3.3).
func (r *Region) Store64(clk *simclock.Clock, off int64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if err := r.WriteRaw(off, b[:]); err != nil {
		return err
	}
	r.charge(clk, r.dev.prof.WriteCost(8), 8)
	return nil
}

// Load64Raw reads a flag word without cost (crash-recovery scans that are
// costed in bulk by the caller).
func (r *Region) Load64Raw(off int64) (uint64, error) {
	var b [8]byte
	if err := r.ReadRaw(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Store64Raw writes a flag word without cost.
func (r *Region) Store64Raw(off int64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return r.WriteRaw(off, b[:])
}
