package simmem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/simclock"
)

var testProf = Profile{Name: "test", ReadLatency: 100, WriteLatency: 150, ReadStream: 1e9, WriteStream: 1e9}

func TestDeviceBasics(t *testing.T) {
	d := NewDevice("dram", 4096, testProf, nil)
	if d.Size() != 4096 || d.Name() != "dram" {
		t.Fatalf("size=%d name=%q", d.Size(), d.Name())
	}
	if d.Profile().ReadLatency != 100 {
		t.Fatal("profile not stored")
	}
}

func TestDevicePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice(size=0) did not panic")
		}
	}()
	NewDevice("bad", 0, testProf, nil)
}

func TestRegionBounds(t *testing.T) {
	d := NewDevice("d", 1024, testProf, nil)
	if _, err := d.Region(512, 1024); err == nil {
		t.Fatal("overflowing region accepted")
	}
	if _, err := d.Region(-1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	r, err := d.Region(256, 512)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 512 || r.Base() != 256 {
		t.Fatalf("size=%d base=%d", r.Size(), r.Base())
	}
	if err := r.WriteRaw(500, make([]byte, 20)); err == nil {
		t.Fatal("write past region end accepted")
	}
	if err := r.ReadRaw(-1, make([]byte, 1)); err == nil {
		t.Fatal("negative read offset accepted")
	}
}

func TestRegionIsolation(t *testing.T) {
	// Two disjoint regions must not observe each other's writes, and a write
	// through one region lands at the right absolute device offset.
	d := NewDevice("cxl", 1024, testProf, nil)
	a, _ := d.Region(0, 512)
	b, _ := d.Region(512, 512)
	if err := a.WriteRaw(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := b.ReadRaw(0, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, []byte("hello")) {
		t.Fatal("disjoint region observed neighbour's write")
	}
	whole := d.WholeRegion()
	if err := whole.ReadRaw(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("hello")) {
		t.Fatalf("device offset 0 = %q, want hello", buf)
	}
}

func TestSubRegion(t *testing.T) {
	d := NewDevice("d", 1024, testProf, nil)
	r, _ := d.Region(100, 800)
	s, err := r.SubRegion(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Base() != 150 {
		t.Fatalf("subregion base %d, want 150", s.Base())
	}
	if _, err := r.SubRegion(700, 200); err == nil {
		t.Fatal("overflowing subregion accepted")
	}
	if err := s.WriteRaw(0, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if err := d.WholeRegion().ReadRaw(150, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xAB {
		t.Fatal("subregion write landed at wrong device offset")
	}
}

func TestCostedReadWriteChargesClock(t *testing.T) {
	d := NewDevice("d", 4096, testProf, nil)
	r := d.WholeRegion()
	clk := simclock.New()
	data := make([]byte, 1000)
	if err := r.WriteAt(clk, 0, data); err != nil {
		t.Fatal(err)
	}
	// write: 150 ns latency + 1000 B at 1 GB/s = 1000 ns -> 1150.
	if clk.Now() != 1150 {
		t.Fatalf("write cost %d ns, want 1150", clk.Now())
	}
	if err := r.ReadAt(clk, 0, data); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != 1150+1100 {
		t.Fatalf("after read clock %d, want 2250", clk.Now())
	}
}

func TestCostedAccessQueuesOnBandwidth(t *testing.T) {
	bw := simclock.NewResource("link", 1e9)
	d := NewDevice("d", 4096, Profile{ReadLatency: 0, WriteLatency: 0}, bw)
	r := d.WholeRegion()
	a, b := simclock.New(), simclock.New()
	if err := r.WriteAt(a, 0, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteAt(b, 0, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if b.Now() != 2000 {
		t.Fatalf("second writer finished at %d, want 2000 (queued)", b.Now())
	}
}

func TestLoadStore64(t *testing.T) {
	d := NewDevice("d", 128, testProf, nil)
	r := d.WholeRegion()
	clk := simclock.New()
	if err := r.Store64(clk, 8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := r.Load64(clk, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("load64 = %#x", v)
	}
	if clk.Now() == 0 {
		t.Fatal("flag-word access charged nothing")
	}
	// Raw variants: no cost.
	before := clk.Now()
	if err := r.Store64Raw(16, 7); err != nil {
		t.Fatal(err)
	}
	v2, err := r.Load64Raw(16)
	if err != nil || v2 != 7 {
		t.Fatalf("raw roundtrip = %d, %v", v2, err)
	}
	if clk.Now() != before {
		t.Fatal("raw access charged the clock")
	}
	if _, err := r.Load64(clk, 124); err == nil {
		t.Fatal("load64 past end accepted")
	}
}

func TestProfileCosts(t *testing.T) {
	p := Profile{ReadLatency: 549, WriteLatency: 549, ReadStream: 10e9, WriteStream: 10e9}
	if got := p.ReadCost(0); got != 549 {
		t.Fatalf("ReadCost(0) = %d", got)
	}
	// 10000 bytes at 10 GB/s = 1000 ns.
	if got := p.WriteCost(10000); got != 1549 {
		t.Fatalf("WriteCost(10000) = %d", got)
	}
	lat := Profile{ReadLatency: 100}
	if got := lat.ReadCost(1 << 20); got != 100 {
		t.Fatalf("latency-only profile charged %d for 1MB", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any write within bounds reads back identically.
	d := NewDevice("p", 1<<16, testProf, nil)
	r := d.WholeRegion()
	f := func(off uint16, data []byte) bool {
		o := int64(off)
		if o+int64(len(data)) > r.Size() {
			o = r.Size() - int64(len(data))
			if o < 0 {
				return true // larger than device; skip
			}
		}
		if err := r.WriteRaw(o, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := r.ReadRaw(o, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataSurvivesRegionDrop(t *testing.T) {
	// The crash-survival property: contents belong to the device, not to the
	// view a host held.
	d := NewDevice("cxlbox", 256, testProf, nil)
	{
		host, _ := d.Region(64, 64)
		if err := host.WriteRaw(0, []byte("durable")); err != nil {
			t.Fatal(err)
		}
	} // host view dropped: simulated crash
	fresh, _ := d.Region(64, 64)
	buf := make([]byte, 7)
	if err := fresh.ReadRaw(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable" {
		t.Fatalf("post-crash contents %q", buf)
	}
}

func TestPowerLossFailsEveryAccess(t *testing.T) {
	d := NewDevice("box", 256, testProf, nil)
	r := d.WholeRegion()
	if err := r.WriteRaw(0, []byte("live")); err != nil {
		t.Fatal(err)
	}
	d.PowerOff()
	if !d.PoweredOff() {
		t.Fatal("PoweredOff false after PowerOff")
	}
	clk := simclock.New()
	buf := make([]byte, 4)
	for name, err := range map[string]error{
		"ReadRaw":  r.ReadRaw(0, buf),
		"WriteRaw": r.WriteRaw(0, buf),
		"ReadAt":   r.ReadAt(clk, 0, buf),
		"WriteAt":  r.WriteAt(clk, 0, buf),
		"Store64":  r.Store64(clk, 0, 1),
	} {
		if !errors.Is(err, ErrPoweredOff) {
			t.Fatalf("%s on dead device: got %v, want ErrPoweredOff", name, err)
		}
	}
	if _, err := r.Load64(clk, 0); !errors.Is(err, ErrPoweredOff) {
		t.Fatalf("Load64 on dead device: %v", err)
	}
	if _, err := r.Load64Raw(0); !errors.Is(err, ErrPoweredOff) {
		t.Fatalf("Load64Raw on dead device: %v", err)
	}
	if clk.Now() != 0 {
		t.Fatalf("failed accesses must not charge cost, clock at %d", clk.Now())
	}
}

func TestPowerOnIsReplacementHardware(t *testing.T) {
	d := NewDevice("box", 64, testProf, nil)
	r := d.WholeRegion()
	if err := r.WriteRaw(0, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	d.PowerOff()
	d.PowerOn()
	if d.PoweredOff() {
		t.Fatal("still powered off after PowerOn")
	}
	buf := make([]byte, 4)
	if err := r.ReadRaw(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) == "gone" {
		t.Fatal("PowerOn must zero contents (replacement hardware), old bytes survived")
	}
}

func TestPowerLossDoesNotAdvanceFaultCounters(t *testing.T) {
	// A dead device receives no operations, so fault-plan op indices must
	// not move while it is off — (seed, index) repro pairs stay stable.
	d := NewDevice("box", 64, testProf, nil)
	p := fault.NewPlan(1)
	p.FailAt(fault.OpMemWrite, 2, fault.ErrInjected)
	d.SetInjector(p)
	r := d.WholeRegion()
	if err := r.WriteRaw(0, []byte{1}); err != nil {
		t.Fatal(err) // index 1
	}
	d.PowerOff()
	for i := 0; i < 5; i++ {
		if err := r.WriteRaw(0, []byte{1}); !errors.Is(err, ErrPoweredOff) {
			t.Fatalf("dead write %d: %v", i, err)
		}
	}
	d.PowerOn()
	if err := r.WriteRaw(0, []byte{1}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("write after PowerOn should be op index 2 and fire: %v", err)
	}
}
