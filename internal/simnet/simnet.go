// Package simnet provides a synchronous RPC fabric between simulated hosts.
//
// PolarCXLMem uses RPC sparingly — CXL memory allocation at startup, page
// address lookups against the buffer-fusion server — while the RDMA-MP
// baseline additionally sends invalidation messages over the network. The
// fabric charges a calibrated round-trip latency (plus optional per-byte
// bandwidth) to the caller's virtual clock and runs the handler inline, so
// server-side work done during the call (lock-table updates, CXL flag
// stores) is charged to the same logical timeline, exactly as a blocking RPC
// behaves.
package simnet

import (
	"fmt"
	"sync"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/simclock"
)

// Handler serves one RPC method. It runs on the caller's virtual clock.
type Handler func(clk *simclock.Clock, req any) (any, error)

// Fabric is a named-endpoint RPC network. Safe for concurrent use.
type Fabric struct {
	rtt int64              // round-trip latency charged per call, ns
	bw  *simclock.Resource // optional per-byte resource (nil = latency only)

	mu        sync.RWMutex
	endpoints map[string]map[string]Handler // endpoint -> method -> handler
	calls     int64
	inj       fault.Injector // optional fault injector; may be nil
}

// New returns a fabric whose calls cost rttNanos round-trip latency. bw, if
// non-nil, is charged reqBytes per call (invalidation fan-out, page pushes
// accounted separately by callers that move bulk data).
func New(rttNanos int64, bw *simclock.Resource) *Fabric {
	return &Fabric{rtt: rttNanos, bw: bw, endpoints: make(map[string]map[string]Handler)}
}

// RTT reports the configured round-trip latency.
func (f *Fabric) RTT() int64 { return f.rtt }

// Register installs handler for method on endpoint, creating the endpoint
// if needed. Re-registering a method replaces the previous handler.
func (f *Fabric) Register(endpoint, method string, handler Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.endpoints[endpoint]
	if !ok {
		ep = make(map[string]Handler)
		f.endpoints[endpoint] = ep
	}
	ep[method] = handler
}

// Deregister removes an endpoint entirely — the simulated process died.
// Subsequent calls to it fail, as they would against a crashed server.
func (f *Fabric) Deregister(endpoint string) {
	f.mu.Lock()
	delete(f.endpoints, endpoint)
	f.mu.Unlock()
}

// SetInjector installs (or, with nil, removes) the fault injector consulted
// on every Call. Injected errors are returned to the caller before the
// handler runs, as a failed send would be; a dropped send is reported as a
// send failure too, because the fabric is synchronous and a silently lost
// request can only manifest to the caller as a timeout.
func (f *Fabric) SetInjector(inj fault.Injector) {
	f.mu.Lock()
	f.inj = inj
	f.mu.Unlock()
}

// Call invokes method on endpoint, charging the fabric RTT (and reqBytes on
// the bandwidth resource, when attached) to clk before the handler runs.
func (f *Fabric) Call(clk *simclock.Clock, endpoint, method string, reqBytes int64, req any) (any, error) {
	f.mu.RLock()
	ep, ok := f.endpoints[endpoint]
	var h Handler
	if ok {
		h = ep[method]
	}
	inj := f.inj
	f.mu.RUnlock()
	if inj != nil {
		if err := inj.Point(fault.OpNetSend, reqBytes); err != nil {
			if fault.IsDrop(err) {
				return nil, fmt.Errorf("simnet: %s.%s request lost: %w", endpoint, method, err)
			}
			return nil, err
		}
	}
	if h == nil {
		return nil, fmt.Errorf("simnet: no handler for %s.%s", endpoint, method)
	}
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	clk.Advance(f.rtt)
	if f.bw != nil && reqBytes > 0 {
		f.bw.Use(clk, reqBytes)
	}
	return h(clk, req)
}

// Calls reports the number of completed Call invocations.
func (f *Fabric) Calls() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.calls
}
