// Package simnet provides a synchronous RPC fabric between simulated hosts.
//
// PolarCXLMem uses RPC sparingly — CXL memory allocation at startup, page
// address lookups against the buffer-fusion server — while the RDMA-MP
// baseline additionally sends invalidation messages over the network. The
// fabric charges a calibrated round-trip latency (plus optional per-byte
// bandwidth) to the caller's virtual clock and runs the handler inline, so
// server-side work done during the call (lock-table updates, CXL flag
// stores) is charged to the same logical timeline, exactly as a blocking RPC
// behaves.
//
// With a RetryPolicy installed, Call becomes an at-most-once RPC over a
// lossy link: each attempt re-consults the fault injector (a dropped or
// failed send is retried after a seeded backoff), every call carries a
// request ID, and replies are cached under that ID so a retry after a lost
// reply returns the cached result instead of re-running the handler.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/simclock"
)

// Handler serves one RPC method. It runs on the caller's virtual clock.
type Handler func(clk *simclock.Clock, req any) (any, error)

// ErrDeadline marks a Call that exhausted its retry budget or deadline.
// Use errors.Is; the concrete error is a *DeadlineError.
var ErrDeadline = errors.New("simnet: call deadline exceeded")

// ErrNoEndpoint marks a call to a deregistered (crashed) or unknown
// endpoint. Not retryable: retransmits cannot resurrect a dead process.
var ErrNoEndpoint = errors.New("simnet: no such endpoint or method")

// DeadlineError reports an RPC that could not be delivered within its
// retry/deadline budget.
type DeadlineError struct {
	Endpoint string
	Method   string
	Attempts int
	Elapsed  int64 // virtual ns spent, including backoff
	Last     error // the final attempt's injected error
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("simnet: %s.%s deadline exceeded after %d attempts (%d ns): %v",
		e.Endpoint, e.Method, e.Attempts, e.Elapsed, e.Last)
}

// Unwrap makes errors.Is(err, ErrDeadline) true.
func (e *DeadlineError) Unwrap() error { return ErrDeadline }

// RetryPolicy makes Fabric.Call survive transient send/reply loss. The
// zero policy (or a nil *RetryPolicy) disables retries: the first injected
// fault is returned to the caller, the pre-hardening behaviour.
type RetryPolicy struct {
	// MaxAttempts bounds send attempts per call (minimum 1).
	MaxAttempts int
	// BackoffNanos is the virtual-time wait before the first retry.
	BackoffNanos int64
	// BackoffFactor multiplies the backoff after each failed attempt
	// (0 or 1 = constant backoff).
	BackoffFactor int64
	// JitterSeed seeds the deterministic per-(call, attempt) jitter added to
	// each backoff, so retries from different callers decorrelate without
	// breaking replay.
	JitterSeed int64
	// DeadlineNanos caps the total virtual time a Call may consume across
	// attempts and backoffs (0 = attempts-bounded only).
	DeadlineNanos int64
}

func (rp RetryPolicy) attempts() int {
	if rp.MaxAttempts < 1 {
		return 1
	}
	return rp.MaxAttempts
}

// mix64 is a splitmix64 finalizer: a cheap deterministic hash for jitter.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Backoff returns the virtual wait before retry number attempt (1-based)
// of request reqID: exponential in attempt with deterministic seeded jitter.
// Exported so services that charge RPCs directly (the fusion server) can
// share one policy shape with the fabric.
func (rp RetryPolicy) Backoff(reqID uint64, attempt int) int64 {
	b := rp.BackoffNanos
	if b <= 0 {
		return 0
	}
	for i := 1; i < attempt; i++ {
		if rp.BackoffFactor > 1 {
			b *= rp.BackoffFactor
		}
	}
	// Jitter in [0, b/4): enough to decorrelate, small enough that timing
	// expectations stay within the same order.
	if q := b / 4; q > 0 {
		b += int64(mix64(uint64(rp.JitterSeed)^reqID*0x9e3779b97f4a7c15^uint64(attempt)) % uint64(q))
	}
	return b
}

// replyCacheSize bounds the idempotency cache; entries are evicted FIFO.
// Retries arrive within a handful of virtual microseconds of the original
// attempt, so a small window is ample.
const replyCacheSize = 256

type cachedReply struct {
	resp any
	err  error
}

// Fabric is a named-endpoint RPC network. Safe for concurrent use.
type Fabric struct {
	rtt int64              // round-trip latency charged per call, ns
	bw  *simclock.Resource // optional per-byte resource (nil = latency only)

	mu        sync.RWMutex
	endpoints map[string]map[string]Handler // endpoint -> method -> handler
	calls     int64
	nextReq   uint64
	retry     *RetryPolicy
	inj       fault.Injector // optional fault injector; may be nil

	replies  map[uint64]cachedReply // reply cache by request ID
	replyLog []uint64               // FIFO eviction order

	obsP atomic.Pointer[fabricObs] // optional metrics sink; may be empty
}

// fabricObs caches the fabric's metric handles so Call pays atomic adds, not
// registry map lookups, per RPC.
type fabricObs struct {
	calls         *obs.Counter // Call invocations
	attempts      *obs.Counter // send attempts (>= calls under retries)
	retries       *obs.Counter // attempts beyond each call's first
	deadlines     *obs.Counter // calls failed with DeadlineError
	replyCacheHit *obs.Counter // attempts answered from the reply cache
	callNanos     *obs.Histogram
}

// New returns a fabric whose calls cost rttNanos round-trip latency. bw, if
// non-nil, is charged reqBytes per call (invalidation fan-out, page pushes
// accounted separately by callers that move bulk data).
func New(rttNanos int64, bw *simclock.Resource) *Fabric {
	return &Fabric{
		rtt:       rttNanos,
		bw:        bw,
		endpoints: make(map[string]map[string]Handler),
		replies:   make(map[uint64]cachedReply),
	}
}

// RTT reports the configured round-trip latency.
func (f *Fabric) RTT() int64 { return f.rtt }

// Register installs handler for method on endpoint, creating the endpoint
// if needed. Re-registering a method replaces the previous handler.
func (f *Fabric) Register(endpoint, method string, handler Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.endpoints[endpoint]
	if !ok {
		ep = make(map[string]Handler)
		f.endpoints[endpoint] = ep
	}
	ep[method] = handler
}

// Deregister removes an endpoint entirely — the simulated process died.
// Subsequent calls to it fail, as they would against a crashed server.
func (f *Fabric) Deregister(endpoint string) {
	f.mu.Lock()
	delete(f.endpoints, endpoint)
	f.mu.Unlock()
}

// SetInjector installs (or, with nil, removes) the fault injector consulted
// on every send attempt (OpNetSend, before the handler) and every reply
// delivery (OpNetRecv, after it). Without a retry policy, injected errors
// surface to the caller as a failed call; with one, drop/fail triggers
// become transient faults absorbed by the retry loop — only a crash (which
// latches) or budget exhaustion still fails the call.
func (f *Fabric) SetInjector(inj fault.Injector) {
	f.mu.Lock()
	f.inj = inj
	f.mu.Unlock()
}

// SetRetryPolicy installs (or, with nil, removes) the fabric-wide retry
// policy applied to every Call.
func (f *Fabric) SetRetryPolicy(rp *RetryPolicy) {
	f.mu.Lock()
	f.retry = rp
	f.mu.Unlock()
}

// SetObserver registers the fabric's RPC metrics with reg (simnet.calls /
// attempts / retries / deadline_exceeded / replycache_hits counters and the
// simnet.call_ns virtual-latency histogram). A nil reg detaches.
func (f *Fabric) SetObserver(reg *obs.Registry) {
	if reg == nil {
		f.obsP.Store(nil)
		return
	}
	f.obsP.Store(&fabricObs{
		calls:         reg.Counter("simnet.calls"),
		attempts:      reg.Counter("simnet.attempts"),
		retries:       reg.Counter("simnet.retries"),
		deadlines:     reg.Counter("simnet.deadline_exceeded"),
		replyCacheHit: reg.Counter("simnet.replycache_hits"),
		callNanos:     reg.Histogram("simnet.call_ns"),
	})
}

// cacheReply records the reply for reqID so a retried request after a lost
// reply is answered without re-running the handler.
func (f *Fabric) cacheReply(reqID uint64, resp any, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.replies[reqID]; !ok {
		f.replyLog = append(f.replyLog, reqID)
		if len(f.replyLog) > replyCacheSize {
			delete(f.replies, f.replyLog[0])
			f.replyLog = f.replyLog[1:]
		}
	}
	f.replies[reqID] = cachedReply{resp: resp, err: err}
}

func (f *Fabric) takeCached(reqID uint64) (cachedReply, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	r, ok := f.replies[reqID]
	return r, ok
}

// Call invokes method on endpoint, charging the fabric RTT (and reqBytes on
// the bandwidth resource, when attached) to clk before the handler runs.
// With a retry policy installed, transiently dropped or failed sends and
// replies are retried with seeded backoff under one request ID; the handler
// runs at most once per call.
func (f *Fabric) Call(clk *simclock.Clock, endpoint, method string, reqBytes int64, req any) (any, error) {
	f.mu.Lock()
	f.nextReq++
	reqID := f.nextReq
	rp := f.retry
	f.mu.Unlock()

	attempts := 1
	var deadline int64
	if rp != nil {
		attempts = rp.attempts()
		if rp.DeadlineNanos > 0 {
			deadline = rp.DeadlineNanos
		}
	}
	start := clk.Now()
	o := f.obsP.Load()
	if o != nil {
		o.calls.Inc()
		defer func() { o.callNanos.Observe(clk.Now() - start) }()
	}
	var last error
	for attempt := 1; attempt <= attempts; attempt++ {
		if o != nil {
			o.attempts.Inc()
			if attempt > 1 {
				o.retries.Inc()
			}
		}
		resp, herr, ferr := f.attempt(clk, endpoint, method, reqBytes, req, reqID, o)
		if ferr == nil {
			return resp, herr
		}
		last = ferr
		// Crashes latch (dead host: every later point fails too) and
		// missing handlers are not transient — neither is retryable.
		if fault.IsCrash(ferr) || errors.Is(ferr, ErrNoEndpoint) || rp == nil || attempt == attempts {
			break
		}
		clk.Advance(rp.Backoff(reqID, attempt))
		if deadline > 0 && clk.Now()-start >= deadline {
			if o != nil {
				o.deadlines.Inc()
			}
			return nil, &DeadlineError{
				Endpoint: endpoint, Method: method,
				Attempts: attempt, Elapsed: clk.Now() - start, Last: last,
			}
		}
	}
	if rp != nil && !fault.IsCrash(last) && !errors.Is(last, ErrNoEndpoint) {
		if o != nil {
			o.deadlines.Inc()
		}
		return nil, &DeadlineError{
			Endpoint: endpoint, Method: method,
			Attempts: attempts, Elapsed: clk.Now() - start, Last: last,
		}
	}
	return nil, last
}

// attempt performs one send/serve/reply round. ferr is the fabric-level
// (retryable) failure; herr is the handler's own result, never retried.
func (f *Fabric) attempt(clk *simclock.Clock, endpoint, method string, reqBytes int64, req any, reqID uint64, o *fabricObs) (resp any, herr, ferr error) {
	f.mu.RLock()
	ep, ok := f.endpoints[endpoint]
	var h Handler
	if ok {
		h = ep[method]
	}
	inj := f.inj
	f.mu.RUnlock()
	if inj != nil {
		if err := inj.Point(fault.OpNetSend, reqBytes); err != nil {
			if fault.IsDrop(err) {
				return nil, nil, fmt.Errorf("simnet: %s.%s request lost: %w", endpoint, method, err)
			}
			return nil, nil, err
		}
	}
	if h == nil {
		return nil, nil, fmt.Errorf("simnet: no handler for %s.%s: %w", endpoint, method, ErrNoEndpoint)
	}
	clk.Advance(f.rtt)
	if f.bw != nil && reqBytes > 0 {
		f.bw.Use(clk, reqBytes)
	}
	// Idempotent retransmit: the server already served this request ID and
	// the reply was lost in flight — answer from the reply cache without
	// re-running the handler.
	if cached, okc := f.takeCached(reqID); okc {
		if o != nil {
			o.replyCacheHit.Inc()
		}
		resp, herr = cached.resp, cached.err
	} else {
		resp, herr = h(clk, req)
		f.mu.Lock()
		f.calls++
		f.mu.Unlock()
	}
	if inj != nil {
		if err := inj.Point(fault.OpNetRecv, 0); err != nil {
			// The handler ran; only the reply was lost. Remember the answer
			// so the retransmit is idempotent.
			f.cacheReply(reqID, resp, herr)
			if fault.IsDrop(err) {
				return nil, nil, fmt.Errorf("simnet: %s.%s reply lost: %w", endpoint, method, err)
			}
			return nil, nil, err
		}
	}
	return resp, herr, nil
}

// ResetStats zeroes the fabric's accounting (the handler-execution count)
// between experiment phases. Protocol state — registered endpoints, the
// request-ID sequence, the idempotency reply cache — is untouched: those are
// wire state, not accounting.
func (f *Fabric) ResetStats() {
	f.mu.Lock()
	f.calls = 0
	f.mu.Unlock()
}

// Calls reports the number of handler executions (retransmits answered from
// the reply cache are not counted twice).
func (f *Fabric) Calls() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.calls
}
