package simnet

import (
	"errors"
	"strings"
	"testing"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/simclock"
)

func TestInjectedSendFailureAfterBytes(t *testing.T) {
	f := New(100, nil)
	f.Register("svc", "echo", func(clk *simclock.Clock, req any) (any, error) {
		return req, nil
	})
	errLink := errors.New("fabric link down")
	plan := fault.NewPlan(3).FailAfterBytes(fault.OpNetSend, 100, errLink)
	f.SetInjector(plan)
	clk := simclock.New()

	if _, err := f.Call(clk, "svc", "echo", 60, "a"); err != nil {
		t.Fatalf("send #1 (60 B cumulative): %v", err)
	}
	if _, err := f.Call(clk, "svc", "echo", 60, "b"); !errors.Is(err, errLink) {
		t.Fatalf("send #2 (120 B cumulative): want link error, got %v", err)
	}
	// Persistent trigger: the fabric stays broken, handlers never run and
	// the clock is not charged for failed sends.
	before := clk.Now()
	if _, err := f.Call(clk, "svc", "echo", 1, "c"); !errors.Is(err, errLink) {
		t.Fatalf("send #3: want link error, got %v", err)
	}
	if clk.Now() != before {
		t.Fatalf("failed send charged the clock: %d -> %d", before, clk.Now())
	}
	if f.Calls() != 1 {
		t.Fatalf("completed calls = %d, want 1 (failed sends must not count)", f.Calls())
	}
	f.SetInjector(nil)
	if _, err := f.Call(clk, "svc", "echo", 60, "d"); err != nil {
		t.Fatalf("send after removing injector: %v", err)
	}
}

func TestInjectedSendDrop(t *testing.T) {
	f := New(100, nil)
	f.Register("svc", "echo", func(clk *simclock.Clock, req any) (any, error) {
		return req, nil
	})
	plan := fault.NewPlan(1).DropAt(fault.OpNetSend, 1)
	f.SetInjector(plan)
	clk := simclock.New()
	// A synchronous fabric surfaces message loss as a failed send, naming
	// the lost request.
	_, err := f.Call(clk, "svc", "echo", 8, "x")
	if !fault.IsDrop(err) {
		t.Fatalf("dropped send: want drop classification, got %v", err)
	}
	if !strings.Contains(err.Error(), "svc.echo") || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("drop error should name the lost request: %v", err)
	}
	// One-shot: the retry goes through.
	if _, err := f.Call(clk, "svc", "echo", 8, "x"); err != nil {
		t.Fatalf("retry after one-shot drop: %v", err)
	}
}
