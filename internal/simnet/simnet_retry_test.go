package simnet

import (
	"errors"
	"testing"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/simclock"
)

// The at-most-once retry layer: transient send/reply loss is absorbed,
// handlers never run twice, and exhaustion surfaces as a typed deadline.

func retryFabric(rp *RetryPolicy) (*Fabric, *int) {
	f := New(10_000, nil)
	served := 0
	f.Register("svc", "inc", func(clk *simclock.Clock, req any) (any, error) {
		served++
		return req.(int) + 1, nil
	})
	f.SetRetryPolicy(rp)
	return f, &served
}

func TestRetryAbsorbsDroppedSend(t *testing.T) {
	f, served := retryFabric(&RetryPolicy{MaxAttempts: 3, BackoffNanos: 1_000})
	f.SetInjector(fault.NewPlan(1).DropAt(fault.OpNetSend, 1))
	clk := simclock.New()
	resp, err := f.Call(clk, "svc", "inc", 8, 41)
	if err != nil || resp != 42 {
		t.Fatalf("call through a dropped send = %v, %v", resp, err)
	}
	if *served != 1 {
		t.Fatalf("handler ran %d times, want 1", *served)
	}
	// One RTT plus at least the base backoff was charged.
	if clk.Now() < 10_000+1_000 {
		t.Fatalf("charged %d ns; retry must pay the backoff", clk.Now())
	}
}

// TestLostReplyIsIdempotent is the at-most-once heart: the handler runs,
// the REPLY is lost, and the retransmit must be answered from the reply
// cache — the handler must not execute a second time.
func TestLostReplyIsIdempotent(t *testing.T) {
	f, served := retryFabric(&RetryPolicy{MaxAttempts: 3, BackoffNanos: 1_000})
	f.SetInjector(fault.NewPlan(1).DropAt(fault.OpNetRecv, 1))
	resp, err := f.Call(simclock.New(), "svc", "inc", 8, 41)
	if err != nil || resp != 42 {
		t.Fatalf("call through a lost reply = %v, %v", resp, err)
	}
	if *served != 1 {
		t.Fatalf("handler ran %d times, want exactly 1 (reply cache must answer the retransmit)", *served)
	}
	if f.Calls() != 1 {
		t.Fatalf("Calls() = %d, want 1", f.Calls())
	}
}

func TestRetryBudgetExhaustionSurfacesDeadline(t *testing.T) {
	f, served := retryFabric(&RetryPolicy{MaxAttempts: 3, BackoffNanos: 1_000})
	plan := fault.NewPlan(1)
	for i := int64(1); i <= 3; i++ {
		plan.DropAt(fault.OpNetSend, i)
	}
	f.SetInjector(plan)
	_, err := f.Call(simclock.New(), "svc", "inc", 8, 41)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline after exhausting attempts, got %v", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlineError, got %T", err)
	}
	if de.Attempts != 3 || de.Last == nil {
		t.Fatalf("deadline metadata wrong: %+v", de)
	}
	if *served != 0 {
		t.Fatalf("handler ran %d times despite every send being lost", *served)
	}
}

func TestDeadlineNanosCapsTotalWait(t *testing.T) {
	f, _ := retryFabric(&RetryPolicy{MaxAttempts: 100, BackoffNanos: 50_000, DeadlineNanos: 60_000})
	plan := fault.NewPlan(1)
	for i := int64(1); i <= 100; i++ {
		plan.DropAt(fault.OpNetSend, i)
	}
	f.SetInjector(plan)
	clk := simclock.New()
	_, err := f.Call(clk, "svc", "inc", 8, 41)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlineError, got %v", err)
	}
	if de.Attempts >= 100 {
		t.Fatalf("deadline should cut the attempt budget short, used %d attempts", de.Attempts)
	}
}

// TestCrashAndNoEndpointAreNotRetried: a latched host crash and a missing
// endpoint cannot be fixed by retransmission — both must fail fast, without
// consuming the retry budget.
func TestCrashAndNoEndpointAreNotRetried(t *testing.T) {
	f, served := retryFabric(&RetryPolicy{MaxAttempts: 5, BackoffNanos: 1_000})
	plan := fault.NewPlan(1).CrashAt(fault.OpNetSend, 1)
	f.SetInjector(plan)
	_, err := f.Call(simclock.New(), "svc", "inc", 8, 41)
	if !fault.IsCrash(err) {
		t.Fatalf("want the crash error, got %v", err)
	}
	if n := plan.Count(fault.OpNetSend); n != 1 {
		t.Fatalf("crashed call attempted %d sends, want 1", n)
	}
	if *served != 0 {
		t.Fatal("handler ran through a crashed send")
	}

	f2, _ := retryFabric(&RetryPolicy{MaxAttempts: 5, BackoffNanos: 1_000})
	clk := simclock.New()
	_, err = f2.Call(clk, "nobody", "inc", 8, 41)
	if !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("want ErrNoEndpoint, got %v", err)
	}
	if clk.Now() != 0 {
		t.Fatalf("missing endpoint burned %d ns of backoff", clk.Now())
	}
}

// TestBackoffDeterministicAndBounded: Backoff is a pure function of
// (policy, reqID, attempt) — replayable — with jitter within [base, 1.25*base)
// and exponential growth across attempts.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	rp := RetryPolicy{BackoffNanos: 1_000, BackoffFactor: 2, JitterSeed: 9}
	for attempt := 1; attempt <= 4; attempt++ {
		base := int64(1_000)
		for i := 1; i < attempt; i++ {
			base *= 2
		}
		for reqID := uint64(1); reqID <= 8; reqID++ {
			b1 := rp.Backoff(reqID, attempt)
			if b2 := rp.Backoff(reqID, attempt); b2 != b1 {
				t.Fatalf("Backoff(%d,%d) not deterministic: %d vs %d", reqID, attempt, b1, b2)
			}
			if b1 < base || b1 >= base+base/4 {
				t.Fatalf("Backoff(%d,%d) = %d, want in [%d, %d)", reqID, attempt, b1, base, base+base/4)
			}
		}
	}
	// Different request IDs decorrelate: not every backoff is identical.
	seen := map[int64]bool{}
	for reqID := uint64(1); reqID <= 16; reqID++ {
		seen[rp.Backoff(reqID, 1)] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced identical backoffs for 16 request ids")
	}
}
