package simnet

import (
	"errors"
	"testing"

	"polarcxlmem/internal/simclock"
)

func TestCallChargesRTTAndRunsHandler(t *testing.T) {
	f := New(10_000, nil)
	if f.RTT() != 10_000 {
		t.Fatalf("rtt = %d", f.RTT())
	}
	f.Register("svc", "echo", func(clk *simclock.Clock, req any) (any, error) {
		return req, nil
	})
	clk := simclock.New()
	resp, err := f.Call(clk, "svc", "echo", 0, "hello")
	if err != nil || resp != "hello" {
		t.Fatalf("resp = %v, %v", resp, err)
	}
	if clk.Now() != 10_000 {
		t.Fatalf("call charged %d ns", clk.Now())
	}
	if f.Calls() != 1 {
		t.Fatalf("calls = %d", f.Calls())
	}
}

func TestCallUnknownEndpointOrMethod(t *testing.T) {
	f := New(100, nil)
	clk := simclock.New()
	if _, err := f.Call(clk, "ghost", "m", 0, nil); err == nil {
		t.Fatal("call to unknown endpoint succeeded")
	}
	f.Register("svc", "a", func(clk *simclock.Clock, req any) (any, error) { return nil, nil })
	if _, err := f.Call(clk, "svc", "b", 0, nil); err == nil {
		t.Fatal("call to unknown method succeeded")
	}
	if f.Calls() != 0 {
		t.Fatal("failed calls were counted")
	}
}

func TestDeregisterSimulatesCrashedServer(t *testing.T) {
	f := New(100, nil)
	f.Register("svc", "m", func(clk *simclock.Clock, req any) (any, error) { return 1, nil })
	clk := simclock.New()
	if _, err := f.Call(clk, "svc", "m", 0, nil); err != nil {
		t.Fatal(err)
	}
	f.Deregister("svc")
	if _, err := f.Call(clk, "svc", "m", 0, nil); err == nil {
		t.Fatal("call to deregistered endpoint succeeded")
	}
}

func TestHandlerErrorsPropagate(t *testing.T) {
	f := New(100, nil)
	boom := errors.New("server-side failure")
	f.Register("svc", "fail", func(clk *simclock.Clock, req any) (any, error) { return nil, boom })
	clk := simclock.New()
	if _, err := f.Call(clk, "svc", "fail", 0, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestBandwidthChargedForPayload(t *testing.T) {
	bw := simclock.NewResource("net", 1e9) // 1 B/ns
	f := New(1_000, bw)
	f.Register("svc", "put", func(clk *simclock.Clock, req any) (any, error) { return nil, nil })
	a, b := simclock.New(), simclock.New()
	if _, err := f.Call(a, "svc", "put", 4096, nil); err != nil {
		t.Fatal(err)
	}
	if a.Now() != 1_000+4096 {
		t.Fatalf("first call at %d", a.Now())
	}
	// Second concurrent call queues on the wire.
	if _, err := f.Call(b, "svc", "put", 4096, nil); err != nil {
		t.Fatal(err)
	}
	if b.Now() < 1_000+2*4096 {
		t.Fatalf("second call did not queue: %d", b.Now())
	}
}

func TestHandlerRunsOnCallerClock(t *testing.T) {
	// Server-side work during the call extends the caller's timeline.
	f := New(500, nil)
	f.Register("svc", "work", func(clk *simclock.Clock, req any) (any, error) {
		clk.Advance(7_000)
		return nil, nil
	})
	clk := simclock.New()
	if _, err := f.Call(clk, "svc", "work", 0, nil); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != 7_500 {
		t.Fatalf("clock = %d, want 7500", clk.Now())
	}
}

func TestReRegisterReplacesHandler(t *testing.T) {
	f := New(1, nil)
	f.Register("svc", "v", func(clk *simclock.Clock, req any) (any, error) { return 1, nil })
	f.Register("svc", "v", func(clk *simclock.Clock, req any) (any, error) { return 2, nil })
	clk := simclock.New()
	resp, err := f.Call(clk, "svc", "v", 0, nil)
	if err != nil || resp != 2 {
		t.Fatalf("resp = %v, %v", resp, err)
	}
}
