// Package storage models the shared cloud page store PolarDB sits on
// (PolarFS-class): page-granular reads/writes with replicated-write
// latencies and a shared bandwidth channel. It survives host crashes — in
// the paper's architecture storage disaggregation predates memory
// disaggregation, so the page store is always remote and durable.
package storage

import (
	"errors"
	"fmt"
	"sync"

	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/simclock"
)

// ErrNotFound reports a page with no durable image.
var ErrNotFound = errors.New("storage: page not found")

// Default device parameters for a replicated cloud page store.
const (
	DefaultReadNanos  = 150_000 // one 16 KB page read
	DefaultWriteNanos = 200_000 // one replicated 16 KB page write
	DefaultBandwidth  = 2e9     // shared channel, bytes/s
)

// Config parameterizes a Store; zero fields select defaults.
type Config struct {
	ReadNanos  int64
	WriteNanos int64
	Bandwidth  float64
}

func (c Config) withDefaults() Config {
	if c.ReadNanos == 0 {
		c.ReadNanos = DefaultReadNanos
	}
	if c.WriteNanos == 0 {
		c.WriteNanos = DefaultWriteNanos
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = DefaultBandwidth
	}
	return c
}

// Store is the shared durable page store plus the page-id allocator.
type Store struct {
	cfg Config
	bw  *simclock.Resource

	mu     sync.Mutex
	pages  map[uint64][]byte // page id -> 16 KB image (checksummed)
	nextID uint64
	inj    fault.Injector // optional fault injector; may be nil
}

// SetInjector installs (or, with nil, removes) a fault injector consulted on
// every page read (fault.OpStoreRead) — transient cloud-store hiccups.
func (s *Store) SetInjector(inj fault.Injector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
}

// New returns an empty page store. Page id 0 is reserved (nil page id);
// allocation starts at 1.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:    cfg,
		bw:     simclock.NewResource("page-store", cfg.Bandwidth),
		pages:  make(map[uint64][]byte),
		nextID: 1,
	}
}

// AllocPageID reserves and returns a fresh page id.
func (s *Store) AllocPageID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	return id
}

// NextID reports the next id to be allocated (restart bootstrapping).
func (s *Store) NextID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// BumpNextID raises the allocator above id (recovery replays allocations).
func (s *Store) BumpNextID(id uint64) {
	s.mu.Lock()
	if id >= s.nextID {
		s.nextID = id + 1
	}
	s.mu.Unlock()
}

// Has reports whether a durable image of id exists.
func (s *Store) Has(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pages[id]
	return ok
}

// PageCount reports how many pages have durable images.
func (s *Store) PageCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// ReadPage fills buf (page.Size bytes) with the durable image of id,
// charging read latency and bandwidth, and verifies the checksum.
func (s *Store) ReadPage(clk *simclock.Clock, id uint64, buf []byte) error {
	if len(buf) != page.Size {
		return fmt.Errorf("storage: read buffer of %d bytes, want %d", len(buf), page.Size)
	}
	s.mu.Lock()
	inj := s.inj
	s.mu.Unlock()
	if inj != nil {
		if err := inj.Point(fault.OpStoreRead, page.Size); err != nil {
			return err
		}
	}
	s.mu.Lock()
	img, ok := s.pages[id]
	if ok {
		copy(buf, img)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("page %d: %w", id, ErrNotFound)
	}
	clk.Advance(s.cfg.ReadNanos)
	s.bw.Use(clk, page.Size)
	if !page.VerifyChecksum(buf) {
		return fmt.Errorf("storage: page %d checksum mismatch", id)
	}
	return nil
}

// WritePage durably stores img (page.Size bytes) under id, stamping the
// checksum, charging replicated-write latency and bandwidth.
func (s *Store) WritePage(clk *simclock.Clock, id uint64, img []byte) error {
	if len(img) != page.Size {
		return fmt.Errorf("storage: write image of %d bytes, want %d", len(img), page.Size)
	}
	cp := make([]byte, page.Size)
	copy(cp, img)
	page.StampChecksum(cp)
	clk.Advance(s.cfg.WriteNanos)
	s.bw.Use(clk, page.Size)
	s.mu.Lock()
	s.pages[id] = cp
	if id >= s.nextID {
		s.nextID = id + 1
	}
	s.mu.Unlock()
	return nil
}

// Device exposes the bandwidth resource for stats.
func (s *Store) Device() *simclock.Resource { return s.bw }
