package storage

import (
	"bytes"
	"strings"
	"testing"

	"polarcxlmem/internal/page"
	"polarcxlmem/internal/simclock"
)

func img(fill byte) []byte {
	b := make([]byte, page.Size)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := New(Config{})
	clk := simclock.New()
	id := s.AllocPageID()
	if id != 1 {
		t.Fatalf("first id = %d", id)
	}
	if err := s.WritePage(clk, id, img(0x5A)); err != nil {
		t.Fatal(err)
	}
	afterWrite := clk.Now()
	if afterWrite < DefaultWriteNanos {
		t.Fatalf("write charged %d ns", afterWrite)
	}
	buf := make([]byte, page.Size)
	if err := s.ReadPage(clk, id, buf); err != nil {
		t.Fatal(err)
	}
	if clk.Now()-afterWrite < DefaultReadNanos {
		t.Fatal("read undercharged")
	}
	// Checksum was stamped; the rest of the payload must match.
	want := img(0x5A)
	page.StampChecksum(want)
	if !bytes.Equal(buf, want) {
		t.Fatal("image mismatch")
	}
	if !s.Has(id) || s.PageCount() != 1 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestReadMissingPage(t *testing.T) {
	s := New(Config{})
	clk := simclock.New()
	buf := make([]byte, page.Size)
	if err := s.ReadPage(clk, 99, buf); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestSizeValidation(t *testing.T) {
	s := New(Config{})
	clk := simclock.New()
	if err := s.WritePage(clk, 1, make([]byte, 100)); err == nil {
		t.Fatal("short write accepted")
	}
	if err := s.ReadPage(clk, 1, make([]byte, 100)); err == nil {
		t.Fatal("short read buffer accepted")
	}
}

func TestAllocatorMonotonicAndBump(t *testing.T) {
	s := New(Config{})
	a, b := s.AllocPageID(), s.AllocPageID()
	if b != a+1 {
		t.Fatalf("ids %d, %d", a, b)
	}
	s.BumpNextID(100)
	if s.NextID() != 101 {
		t.Fatalf("next = %d", s.NextID())
	}
	if got := s.AllocPageID(); got != 101 {
		t.Fatalf("post-bump alloc = %d", got)
	}
	s.BumpNextID(5) // must not regress
	if s.NextID() != 102 {
		t.Fatal("allocator regressed")
	}
}

func TestWriteBeyondAllocatorAdvancesIt(t *testing.T) {
	s := New(Config{})
	clk := simclock.New()
	if err := s.WritePage(clk, 50, img(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.AllocPageID(); got != 51 {
		t.Fatalf("alloc after direct write = %d", got)
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	s := New(Config{})
	clk := simclock.New()
	s.WritePage(clk, 1, img(0x11))
	s.WritePage(clk, 1, img(0x22))
	buf := make([]byte, page.Size)
	if err := s.ReadPage(clk, 1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[1000] != 0x22 {
		t.Fatal("overwrite lost")
	}
	if s.PageCount() != 1 {
		t.Fatal("overwrite duplicated page")
	}
}

func TestBandwidthShared(t *testing.T) {
	s := New(Config{Bandwidth: 1e9})
	a, b := simclock.New(), simclock.New()
	s.WritePage(a, 1, img(1))
	s.WritePage(b, 2, img(2))
	// Each page is 16384 B at 1 GB/s = 16384 ns; the second must queue.
	if b.Now() < DefaultWriteNanos+2*16384 {
		t.Fatalf("no queueing on storage channel: b at %d", b.Now())
	}
	if s.Device().Stats().Units != 2*page.Size {
		t.Fatalf("device units = %d", s.Device().Stats().Units)
	}
}

func TestStoreSurvivesClientDrop(t *testing.T) {
	s := New(Config{})
	clk := simclock.New()
	s.WritePage(clk, 7, img(0xAB))
	// Simulated crash: new clock, same store.
	clk2 := simclock.New()
	buf := make([]byte, page.Size)
	if err := s.ReadPage(clk2, 7, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatal("store lost page across client crash")
	}
}
