package tier

import (
	"sort"
	"sync"
	"sync/atomic"

	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/simclock"
)

// DemoteReason says why a page left the fast tier. The values match the Aux
// encoding of the obs.EvTierDemote trace event.
type DemoteReason int

// Demotion reasons.
const (
	// DemoteCold: the daemon found the page's heat under DemoteBelow.
	DemoteCold DemoteReason = 0
	// DemoteWrite: a writer latched the page; the mirror is invalidated
	// before the first modification so it can never serve stale bytes.
	DemoteWrite DemoteReason = 1
	// DemoteEvict: the durable CXL copy is being evicted; an inclusive
	// mirror must not outlive its home.
	DemoteEvict DemoteReason = 2
	// DemotePressure: evicted from the fast tier to make room (capacity or
	// a QoS budget).
	DemotePressure DemoteReason = 3
)

// Mover is the mechanism half of tiering: the pool-side surface that
// physically promotes and demotes pages. core.CXLPool implements it with an
// inclusive DRAM mirror (the CXL copy stays the durable home, so promotion
// never weakens crash recovery).
type Mover interface {
	// Promote copies page id into the fast tier. ok=false without error
	// means the page was skipped — not resident, mid-load, write-latched,
	// or already promoted; the daemon just moves on. An error is a real
	// device fault (under fault injection, a simulated host crash) and
	// aborts the tick.
	Promote(clk *simclock.Clock, id uint64) (ok bool, err error)
	// Demote drops page id's fast-tier mirror; false means it was not
	// promoted.
	Demote(clk *simclock.Clock, id uint64, reason DemoteReason) bool
	// Promoted returns the fast-tier resident page ids in ascending order
	// (canonical order; see the frametab determinism contract).
	Promoted() []uint64
	// FastResident reports how many pages the fast tier currently holds.
	FastResident() int
}

// Stats is a snapshot of daemon counters.
type Stats struct {
	Runs       int64 // placement runs that actually executed
	Promotions int64
	Demotions  int64
	Skips      int64 // promotion candidates skipped (pinned, absent, over budget)
}

// Daemon is the background promotion/demotion scheduler. Like the flusher
// it has no goroutine: the engine calls Tick from its commit path, and
// overlapping ticks do not stack (TryLock).
type Daemon struct {
	cfg   Config
	heat  *Heat
	mover Mover

	mu      sync.Mutex // held across one placement run; TryLock in Tick
	qos     QoS        // guarded by mu
	nextDue int64      // guarded by mu

	runs       atomic.Int64
	promotions atomic.Int64
	demotions  atomic.Int64
	skips      atomic.Int64

	obsP atomic.Pointer[tierObs]
}

// tierObs carries the daemon's registry handles.
type tierObs struct {
	promotionsC  *obs.Counter // tier.<name>.promotions
	demotionsC   *obs.Counter // tier.<name>.demotions
	skipsC       *obs.Counter // tier.<name>.skips
	fastResident *obs.Gauge   // tier.<name>.fast_resident
}

// NewDaemon builds a placement daemon driving mover by heat. Zero cfg fields
// (except FastPages) select the defaults; the initial QoS is permissive.
func NewDaemon(heat *Heat, mover Mover, cfg Config) *Daemon {
	return &Daemon{cfg: cfg.withDefaults(), heat: heat, mover: mover}
}

// Config reports the effective (defaulted) config.
func (d *Daemon) Config() Config { return d.cfg }

// Heat returns the daemon's heat map (the facade wires it to dataplane
// tenant binding).
func (d *Daemon) Heat() *Heat { return d.heat }

// SetQoS swaps the tenant budget policy. Live: the next tick enforces the
// new budgets, demoting over-budget tenants' coldest pages first.
func (d *Daemon) SetQoS(q QoS) {
	d.mu.Lock()
	d.qos = q.clone()
	d.mu.Unlock()
}

// QoS reports the current budget policy.
func (d *Daemon) QoS() QoS {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.qos.clone()
}

// Stats snapshots the daemon counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Runs:       d.runs.Load(),
		Promotions: d.promotions.Load(),
		Demotions:  d.demotions.Load(),
		Skips:      d.skips.Load(),
	}
}

// SetObserver registers the daemon's metrics (tier.<name>.promotions /
// demotions / skips / fast_resident) with reg; nil detaches. The per-move
// tier.* trace events are emitted by the Mover (they carry the pool actor),
// not here.
func (d *Daemon) SetObserver(reg *obs.Registry, name string) {
	if reg == nil {
		d.obsP.Store(nil)
		return
	}
	p := "tier." + name + "."
	d.obsP.Store(&tierObs{
		promotionsC:  reg.Counter(p + "promotions"),
		demotionsC:   reg.Counter(p + "demotions"),
		skipsC:       reg.Counter(p + "skips"),
		fastResident: reg.Gauge(p + "fast_resident"),
	})
}

// Tick runs one placement cycle if the interval has elapsed on clk and no
// other caller is mid-run. The run is bounded by MaxMovesPerTick; promotion
// I/O (the CXL->DRAM copy) is charged to clk — the daemon borrows the
// ticking worker's timeline, modeling stolen background cycles without a
// scheduler. An error from the Mover (a simulated host crash under fault
// injection) is surfaced to the committer, like every other daemon.
func (d *Daemon) Tick(clk *simclock.Clock) error {
	if !d.mu.TryLock() {
		return nil // a concurrent tick is already placing
	}
	defer d.mu.Unlock()
	now := clk.Now()
	if now < d.nextDue {
		return nil
	}
	d.nextDue = now + d.cfg.IntervalNanos
	d.runs.Add(1)

	moves := 0
	promoted := make(map[uint64]bool)
	var promotedHeat []PageHeat // promoted pages, decayed scores
	for _, id := range d.mover.Promoted() {
		promoted[id] = true
		promotedHeat = append(promotedHeat, PageHeat{
			ID:     id,
			Score:  d.heat.Score(now, id),
			Tenant: d.heat.Tenant(id),
		})
	}

	// Per-tenant fast-tier occupancy, for budget enforcement.
	occupancy := make(map[int]int)
	for _, p := range promotedHeat {
		occupancy[p.Tenant]++
	}

	// Demote pass 1: cold pages leave the fast tier. Coldest first so the
	// pages most likely to be re-promoted survive a bounded run.
	sort.Slice(promotedHeat, func(i, j int) bool {
		if promotedHeat[i].Score != promotedHeat[j].Score {
			return promotedHeat[i].Score < promotedHeat[j].Score
		}
		return promotedHeat[i].ID < promotedHeat[j].ID
	})
	live := promotedHeat[:0]
	for _, p := range promotedHeat {
		if p.Score < d.cfg.DemoteBelow && moves < d.cfg.MaxMovesPerTick {
			if d.demote(clk, p.ID, DemoteCold) {
				moves++
				occupancy[p.Tenant]--
				delete(promoted, p.ID)
				continue
			}
		}
		live = append(live, p)
	}
	promotedHeat = live

	// Demote pass 2: enforce QoS budgets — for each over-budget tenant,
	// demote its coldest pages until it fits. Tenants are visited in
	// ascending id order (canonical).
	tenants := make([]int, 0, len(occupancy))
	for t := range occupancy {
		tenants = append(tenants, t)
	}
	sort.Ints(tenants)
	for _, t := range tenants {
		budget := d.qos.budgetFor(t)
		if budget < 0 {
			continue
		}
		for _, p := range promotedHeat { // already coldest-first
			if occupancy[t] <= budget || moves >= d.cfg.MaxMovesPerTick {
				break
			}
			if p.Tenant != t || !promoted[p.ID] {
				continue
			}
			if d.demote(clk, p.ID, DemotePressure) {
				moves++
				occupancy[t]--
				delete(promoted, p.ID)
			}
		}
	}

	// Promote pass: hottest candidates first. When the fast tier is full,
	// a candidate strictly hotter than the coldest surviving resident
	// displaces it (pressure demotion); otherwise the pass ends — every
	// later candidate is colder still.
	candidates := d.heat.Snapshot(now) // hottest first, canonical order
	for _, c := range candidates {
		if moves >= d.cfg.MaxMovesPerTick {
			break
		}
		if c.Score < d.cfg.PromoteAbove {
			break // sorted: nothing hotter follows
		}
		if promoted[c.ID] {
			continue
		}
		budget := d.qos.budgetFor(c.Tenant)
		if budget >= 0 && occupancy[c.Tenant] >= budget {
			d.skip()
			continue
		}
		if d.mover.FastResident() >= d.cfg.FastPages {
			// Displace the coldest resident, if strictly colder.
			victim, ok := coldestIn(promotedHeat, promoted)
			if !ok || victim.Score >= c.Score {
				break
			}
			if !d.demote(clk, victim.ID, DemotePressure) {
				break
			}
			moves++
			occupancy[victim.Tenant]--
			delete(promoted, victim.ID)
			if moves >= d.cfg.MaxMovesPerTick {
				break
			}
		}
		ok, err := d.mover.Promote(clk, c.ID)
		if err != nil {
			return err
		}
		if !ok {
			d.skip()
			continue
		}
		moves++
		d.promotions.Add(1)
		occupancy[c.Tenant]++
		promoted[c.ID] = true
		if o := d.obsP.Load(); o != nil {
			o.promotionsC.Inc()
		}
	}

	if o := d.obsP.Load(); o != nil {
		o.fastResident.Set(int64(d.mover.FastResident()))
	}
	return nil
}

// demote drops one mirror through the mover, counting it.
func (d *Daemon) demote(clk *simclock.Clock, id uint64, reason DemoteReason) bool {
	if !d.mover.Demote(clk, id, reason) {
		return false
	}
	d.demotions.Add(1)
	if o := d.obsP.Load(); o != nil {
		o.demotionsC.Inc()
	}
	return true
}

func (d *Daemon) skip() {
	d.skips.Add(1)
	if o := d.obsP.Load(); o != nil {
		o.skipsC.Inc()
	}
}

// coldestIn returns the coldest entry of promotedHeat still in the promoted
// set (promotedHeat is sorted coldest-first).
func coldestIn(promotedHeat []PageHeat, promoted map[uint64]bool) (PageHeat, bool) {
	for _, p := range promotedHeat {
		if promoted[p.ID] {
			return p, true
		}
	}
	return PageHeat{}, false
}
