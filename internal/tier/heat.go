// Package tier is the hot/cold placement policy layer: a decaying per-page
// access-frequency map (Heat) fed by the frametab touch-sampler hook, and a
// tick-driven promotion/demotion daemon (Daemon) that moves pages between a
// slow durable tier (CXL) and a fast inclusive tier (host DRAM) through a
// pool-provided Mover.
//
// The paper's TieredPool splits DRAM and CXL statically; "Memory Sharing
// with CXL" (AMD) argues the coherent tier boundary should instead be
// crossed dynamically by access frequency. This package supplies the policy
// half of that argument: heat tracking, promotion/demotion thresholds with
// hysteresis, and per-tenant QoS budgets deciding who gets DRAM under
// pressure. The mechanism half (what a promotion physically does) lives in
// the pool that implements Mover — see core.CXLPool.EnableTiering.
//
// Like every daemon in this repo there is no goroutine: time is virtual, so
// the engine calls Daemon.Tick from its commit path and the tick decides
// against the caller's clock whether a placement interval has elapsed.
package tier

import (
	"math"
	"sort"
	"sync"

	"polarcxlmem/internal/simclock"
)

// heatShards stripes the heat map; page-id hashing matches frametab's
// Fibonacci reduction so sequential ids spread.
const heatShards = 16

// PageHeat is one page's decayed access score and last-toucher tenant.
type PageHeat struct {
	ID     uint64
	Score  float64
	Tenant int
}

type heatEntry struct {
	score  float64 // decayed to `last`
	last   int64   // virtual time of the most recent touch
	tenant int     // tenant of the most recent touch (0 = unattributed)
}

type heatShard struct {
	mu      sync.Mutex
	entries map[uint64]*heatEntry
}

// Heat is a decaying per-page access-frequency map. Every touch adds one
// unit of heat; heat halves every HalfLifeNanos of virtual time, so a page's
// score approximates its recent access rate (touches per half-life window,
// geometrically weighted toward now).
//
// Tenant attribution rides on the touch: dataplane workers bind their
// executing clock to the request's tenant id (Bind), and Touch looks the
// tenant up by clock. A page's Tenant is its most recent toucher — the
// simple rule is deliberate; shared pages drift to whoever is hot on them,
// which is exactly who the QoS policy should charge.
type Heat struct {
	halfLife float64 // nanos, > 0
	shards   [heatShards]heatShard
	binds    sync.Map // *simclock.Clock -> int (tenant)
}

// NewHeat builds a heat map with the given half-life; halfLifeNanos <= 0
// selects DefaultHalfLifeNanos.
func NewHeat(halfLifeNanos int64) *Heat {
	if halfLifeNanos <= 0 {
		halfLifeNanos = DefaultHalfLifeNanos
	}
	h := &Heat{halfLife: float64(halfLifeNanos)}
	for i := range h.shards {
		h.shards[i].entries = make(map[uint64]*heatEntry)
	}
	return h
}

// Bind attributes all future touches made on clk to tenant (until rebound).
// Dataplane workers call this per request; a clock with no binding
// attributes to tenant 0.
func (h *Heat) Bind(clk *simclock.Clock, tenant int) {
	h.binds.Store(clk, tenant)
}

// Unbind removes clk's tenant attribution.
func (h *Heat) Unbind(clk *simclock.Clock) {
	h.binds.Delete(clk)
}

func (h *Heat) shardOf(id uint64) *heatShard {
	return &h.shards[(id*0x9E3779B97F4A7C15)>>32&(heatShards-1)]
}

// decayTo folds elapsed virtual time into e.score. Caller holds the shard
// mutex.
func (e *heatEntry) decayTo(now int64, halfLife float64) {
	if now <= e.last {
		return
	}
	e.score *= math.Exp2(-float64(now-e.last) / halfLife)
	e.last = now
}

// Touch records one access to page id at clk's current virtual time,
// attributed to the clock's bound tenant. This is the frametab
// SetTouchSampler target: it charges no simulated device operations.
func (h *Heat) Touch(clk *simclock.Clock, id uint64) {
	tenant := 0
	if v, ok := h.binds.Load(clk); ok {
		tenant = v.(int)
	}
	now := clk.Now()
	sh := h.shardOf(id)
	sh.mu.Lock()
	e := sh.entries[id]
	if e == nil {
		e = &heatEntry{}
		sh.entries[id] = e
	}
	e.decayTo(now, h.halfLife)
	e.score++
	e.tenant = tenant
	sh.mu.Unlock()
}

// Score reports page id's heat decayed to now; 0 for untracked pages.
func (h *Heat) Score(now int64, id uint64) float64 {
	sh := h.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[id]
	if e == nil {
		return 0
	}
	e.decayTo(now, h.halfLife)
	return e.score
}

// Tenant reports page id's most recent toucher tenant (0 if untracked).
func (h *Heat) Tenant(id uint64) int {
	sh := h.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.entries[id]; e != nil {
		return e.tenant
	}
	return 0
}

// Forget drops page id's heat entry (pool teardown hygiene).
func (h *Heat) Forget(id uint64) {
	sh := h.shardOf(id)
	sh.mu.Lock()
	delete(sh.entries, id)
	sh.mu.Unlock()
}

// Len reports how many pages are tracked.
func (h *Heat) Len() int {
	n := 0
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot decays every entry to now and returns the pages ordered hottest
// first (ties broken by ascending id, so the ordering — and with it the
// daemon's promotion order — is canonical; map iteration order must not leak
// into instrumented paths, see the frametab package comment). Entries whose
// score has decayed below evaporateBelow are dropped to bound the map.
func (h *Heat) Snapshot(now int64) []PageHeat {
	var out []PageHeat
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for id, e := range sh.entries {
			e.decayTo(now, h.halfLife)
			if e.score < evaporateBelow {
				delete(sh.entries, id)
				continue
			}
			out = append(out, PageHeat{ID: id, Score: e.score, Tenant: e.tenant})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// evaporateBelow is the score under which an entry is garbage-collected at
// Snapshot time: ~7 half-lives after a single touch.
const evaporateBelow = 1.0 / 128
