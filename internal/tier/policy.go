package tier

import "polarcxlmem/internal/simclock"

// Config defaults: a 1 ms placement cadence with a 2 ms heat half-life makes
// the daemon converge on a shifted hot set within a few milliseconds of
// virtual time without thrashing on transient touches.
const (
	DefaultHalfLifeNanos = 2 * simclock.Millisecond
	DefaultIntervalNanos = simclock.Millisecond
	DefaultPromoteAbove  = 2.0
	DefaultDemoteBelow   = 0.25
	DefaultMaxMoves      = 32
)

// Config tunes the tiering daemon. The zero value of every field except
// FastPages selects the defaults; FastPages is required.
type Config struct {
	// FastPages is the fast-tier (host DRAM mirror) capacity in pages.
	// Required: a zero fast tier makes tiering a no-op.
	FastPages int
	// HalfLifeNanos is the heat decay half-life in virtual nanoseconds;
	// zero means DefaultHalfLifeNanos.
	HalfLifeNanos int64
	// IntervalNanos is the virtual time between placement runs; zero means
	// DefaultIntervalNanos.
	IntervalNanos int64
	// PromoteAbove is the minimum heat score for promotion; zero means
	// DefaultPromoteAbove. A page must be touched at least this many times
	// per half-life window to earn DRAM.
	PromoteAbove float64
	// DemoteBelow is the heat score under which a promoted page is demoted;
	// zero means DefaultDemoteBelow. Keeping DemoteBelow well under
	// PromoteAbove is the hysteresis band that stops boundary pages from
	// ping-ponging between tiers.
	DemoteBelow float64
	// MaxMovesPerTick bounds promotions+demotions per placement run (the
	// daemon borrows the ticking worker's timeline, so a run must stay
	// cheap); zero means DefaultMaxMoves.
	MaxMovesPerTick int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.HalfLifeNanos <= 0 {
		c.HalfLifeNanos = DefaultHalfLifeNanos
	}
	if c.IntervalNanos <= 0 {
		c.IntervalNanos = DefaultIntervalNanos
	}
	if c.PromoteAbove <= 0 {
		c.PromoteAbove = DefaultPromoteAbove
	}
	if c.DemoteBelow <= 0 {
		c.DemoteBelow = DefaultDemoteBelow
	}
	if c.MaxMovesPerTick <= 0 {
		c.MaxMovesPerTick = DefaultMaxMoves
	}
	return c
}

// QoS is the multi-tenant fast-tier budget policy: who gets DRAM under
// pressure. The zero value is fully permissive (no per-tenant caps).
//
// Budget resolution for tenant t: an entry in TenantFastPages wins (and an
// explicit 0 there means "no fast-tier pages at all" — the noisy-neighbor
// quarantine); otherwise DefaultFastPages applies, where 0 means unlimited.
type QoS struct {
	// DefaultFastPages caps fast-tier pages for tenants without an explicit
	// entry; 0 = unlimited.
	DefaultFastPages int
	// TenantFastPages overrides the cap per tenant id. An explicit 0 entry
	// bars the tenant from the fast tier entirely.
	TenantFastPages map[int]int
}

// budgetFor resolves tenant t's fast-tier cap; -1 means unlimited.
func (q QoS) budgetFor(t int) int {
	if q.TenantFastPages != nil {
		if cap, ok := q.TenantFastPages[t]; ok {
			return cap
		}
	}
	if q.DefaultFastPages <= 0 {
		return -1
	}
	return q.DefaultFastPages
}

// clone deep-copies the QoS so a caller mutating its map after SetQoS does
// not race the daemon.
func (q QoS) clone() QoS {
	out := QoS{DefaultFastPages: q.DefaultFastPages}
	if q.TenantFastPages != nil {
		out.TenantFastPages = make(map[int]int, len(q.TenantFastPages))
		for k, v := range q.TenantFastPages {
			out.TenantFastPages[k] = v
		}
	}
	return out
}
