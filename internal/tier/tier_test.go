package tier

import (
	"errors"
	"sort"
	"testing"

	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/simclock"
)

const hl = 1000 // test half-life: 1000 virtual nanos

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestHeatDecayHalfLife(t *testing.T) {
	h := NewHeat(hl)
	clk := simclock.New()
	h.Touch(clk, 42)
	if s := h.Score(clk.Now(), 42); !almost(s, 1) {
		t.Fatalf("score after one touch = %v, want 1", s)
	}
	clk.Advance(hl)
	if s := h.Score(clk.Now(), 42); !almost(s, 0.5) {
		t.Fatalf("score after one half-life = %v, want 0.5", s)
	}
	clk.Advance(hl)
	if s := h.Score(clk.Now(), 42); !almost(s, 0.25) {
		t.Fatalf("score after two half-lives = %v, want 0.25", s)
	}
	// Touches accumulate on top of the decayed score.
	h.Touch(clk, 42)
	h.Touch(clk, 42)
	if s := h.Score(clk.Now(), 42); !almost(s, 2.25) {
		t.Fatalf("score after two more touches = %v, want 2.25", s)
	}
	if s := h.Score(clk.Now(), 99); s != 0 {
		t.Fatalf("untracked page score = %v, want 0", s)
	}
}

func TestHeatTenantAttribution(t *testing.T) {
	h := NewHeat(hl)
	a, b := simclock.New(), simclock.New()
	h.Bind(a, 7)
	h.Touch(a, 1)
	if got := h.Tenant(1); got != 7 {
		t.Fatalf("tenant = %d, want 7", got)
	}
	// Unbound clock attributes to tenant 0; last toucher wins.
	h.Touch(b, 1)
	if got := h.Tenant(1); got != 0 {
		t.Fatalf("tenant after unbound touch = %d, want 0", got)
	}
	h.Bind(b, 3)
	h.Touch(b, 1)
	if got := h.Tenant(1); got != 3 {
		t.Fatalf("tenant after rebound touch = %d, want 3", got)
	}
	h.Unbind(b)
	h.Touch(b, 1)
	if got := h.Tenant(1); got != 0 {
		t.Fatalf("tenant after Unbind = %d, want 0", got)
	}
}

func TestHeatSnapshotOrderAndEvaporation(t *testing.T) {
	h := NewHeat(hl)
	clk := simclock.New()
	for i := 0; i < 3; i++ {
		h.Touch(clk, 10)
	}
	h.Touch(clk, 20)
	h.Touch(clk, 5) // ties with 20 at score 1: ascending id breaks it
	snap := h.Snapshot(clk.Now())
	want := []uint64{10, 5, 20}
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, id := range want {
		if snap[i].ID != id {
			t.Fatalf("snapshot[%d].ID = %d, want %d (got %+v)", i, snap[i].ID, id, snap)
		}
	}
	// ~7 half-lives after a single touch the entry evaporates at snapshot.
	clk.Advance(16 * hl)
	if got := h.Snapshot(clk.Now()); len(got) != 0 {
		t.Fatalf("snapshot after decay = %+v, want empty", got)
	}
	if n := h.Len(); n != 0 {
		t.Fatalf("Len after evaporation = %d, want 0", n)
	}
}

func TestQoSBudgetResolution(t *testing.T) {
	q := QoS{DefaultFastPages: 4, TenantFastPages: map[int]int{1: 8, 2: 0}}
	if got := q.budgetFor(1); got != 8 {
		t.Fatalf("explicit budget = %d, want 8", got)
	}
	if got := q.budgetFor(2); got != 0 {
		t.Fatalf("explicit zero budget = %d, want 0 (banned)", got)
	}
	if got := q.budgetFor(3); got != 4 {
		t.Fatalf("default budget = %d, want 4", got)
	}
	if got := (QoS{}).budgetFor(3); got != -1 {
		t.Fatalf("permissive budget = %d, want -1 (unlimited)", got)
	}
}

// fakeMover records moves; promotion can be vetoed per page (a pinned or
// write-latched page in the real pool) or fail outright (device fault).
type fakeMover struct {
	fast       map[uint64]bool
	deny       map[uint64]bool
	err        error
	promotions []uint64
	demotions  map[uint64]DemoteReason
}

func newFakeMover() *fakeMover {
	return &fakeMover{fast: make(map[uint64]bool), deny: make(map[uint64]bool), demotions: make(map[uint64]DemoteReason)}
}

func (m *fakeMover) Promote(clk *simclock.Clock, id uint64) (bool, error) {
	if m.err != nil {
		return false, m.err
	}
	if m.deny[id] {
		return false, nil
	}
	m.fast[id] = true
	m.promotions = append(m.promotions, id)
	return true, nil
}

func (m *fakeMover) Demote(clk *simclock.Clock, id uint64, reason DemoteReason) bool {
	if !m.fast[id] {
		return false
	}
	delete(m.fast, id)
	m.demotions[id] = reason
	return true
}

func (m *fakeMover) Promoted() []uint64 {
	out := make([]uint64, 0, len(m.fast))
	for id := range m.fast {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *fakeMover) FastResident() int { return len(m.fast) }

func tickCfg(fastPages int) Config {
	return Config{FastPages: fastPages, HalfLifeNanos: hl, IntervalNanos: 100}
}

func touchN(h *Heat, clk *simclock.Clock, id uint64, n int) {
	for i := 0; i < n; i++ {
		h.Touch(clk, id)
	}
}

func TestDaemonPromotesHottestFirst(t *testing.T) {
	h := NewHeat(hl)
	m := newFakeMover()
	d := NewDaemon(h, m, tickCfg(2))
	clk := simclock.New()
	touchN(h, clk, 1, 3)
	touchN(h, clk, 2, 5)
	touchN(h, clk, 3, 4)
	touchN(h, clk, 4, 1) // under PromoteAbove: never promoted
	clk.Advance(100)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	// FastPages=2: the two hottest (2 then 3) get in; 1 is left out this
	// round (not hotter than any resident), 4 is under the threshold.
	if want := []uint64{2, 3}; len(m.promotions) != 2 || m.promotions[0] != want[0] || m.promotions[1] != want[1] {
		t.Fatalf("promotions = %v, want %v", m.promotions, want)
	}
	st := d.Stats()
	if st.Runs != 1 || st.Promotions != 2 {
		t.Fatalf("stats = %+v, want 1 run / 2 promotions", st)
	}
	// Same virtual instant: interval gating makes a second tick a no-op.
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Runs != 1 {
		t.Fatalf("runs after same-instant tick = %d, want 1", st.Runs)
	}
}

func TestDaemonColdDemotionAndHysteresis(t *testing.T) {
	h := NewHeat(hl)
	m := newFakeMover()
	d := NewDaemon(h, m, tickCfg(4))
	clk := simclock.New()
	touchN(h, clk, 1, 4)
	clk.Advance(100)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if !m.fast[1] {
		t.Fatal("page 1 not promoted")
	}
	// Two half-lives on: score ~0.93 — inside the hysteresis band
	// (DemoteBelow 0.25 .. PromoteAbove 2.0), so it must stay resident.
	clk.Advance(2 * hl)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if !m.fast[1] {
		t.Fatal("page 1 demoted inside the hysteresis band")
	}
	// Four more half-lives: score ~0.058 < DemoteBelow — demoted as cold.
	clk.Advance(4 * hl)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if m.fast[1] {
		t.Fatal("cold page 1 still in the fast tier")
	}
	if r := m.demotions[1]; r != DemoteCold {
		t.Fatalf("demote reason = %v, want DemoteCold", r)
	}
}

func TestDaemonDisplacesColderResident(t *testing.T) {
	h := NewHeat(hl)
	m := newFakeMover()
	d := NewDaemon(h, m, tickCfg(1))
	clk := simclock.New()
	touchN(h, clk, 1, 3)
	clk.Advance(100)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if !m.fast[1] {
		t.Fatal("page 1 not promoted")
	}
	// Page 2 becomes strictly hotter than the (decayed) resident.
	clk.Advance(100)
	touchN(h, clk, 2, 6)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if m.fast[1] || !m.fast[2] {
		t.Fatalf("fast set = %v, want {2} (1 displaced)", m.Promoted())
	}
	if r := m.demotions[1]; r != DemotePressure {
		t.Fatalf("displacement reason = %v, want DemotePressure", r)
	}
}

func TestDaemonQoSBudgets(t *testing.T) {
	h := NewHeat(hl)
	m := newFakeMover()
	d := NewDaemon(h, m, tickCfg(8))
	clk := simclock.New()
	noisy, victim := simclock.New(), simclock.New()
	noisy.AdvanceTo(clk.Now())
	victim.AdvanceTo(clk.Now())
	h.Bind(noisy, 1)
	h.Bind(victim, 2)
	for id := uint64(10); id < 14; id++ {
		touchN(h, noisy, id, 5)
	}
	touchN(h, victim, 20, 4)
	clk.Advance(100)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if got := m.FastResident(); got != 5 {
		t.Fatalf("permissive QoS residents = %d, want 5", got)
	}

	// Cap tenant 1 at 2 pages: its two coldest mirrors are demoted with
	// DemotePressure at the next tick; tenant 2 is untouched.
	d.SetQoS(QoS{TenantFastPages: map[int]int{1: 2}})
	clk.Advance(100)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	n1 := 0
	for _, id := range m.Promoted() {
		if h.Tenant(id) == 1 {
			n1++
		}
	}
	if n1 != 2 {
		t.Fatalf("tenant 1 residents after cap = %d, want 2", n1)
	}
	if !m.fast[20] {
		t.Fatal("tenant 2's page demoted by tenant 1's cap")
	}
	for id, r := range m.demotions {
		if r != DemotePressure {
			t.Fatalf("page %d demote reason = %v, want DemotePressure", id, r)
		}
	}

	// An explicit zero budget bans the tenant: new hot pages are skipped.
	d.SetQoS(QoS{TenantFastPages: map[int]int{3: 0}})
	banned := simclock.New()
	banned.AdvanceTo(clk.Now())
	h.Bind(banned, 3)
	touchN(h, banned, 30, 8)
	clk.Advance(100)
	skipsBefore := d.Stats().Skips
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if m.fast[30] {
		t.Fatal("banned tenant's page was promoted")
	}
	if d.Stats().Skips <= skipsBefore {
		t.Fatal("banned promotion not counted as a skip")
	}
}

func TestDaemonMoveBudgetPerTick(t *testing.T) {
	h := NewHeat(hl)
	m := newFakeMover()
	cfg := tickCfg(64)
	cfg.MaxMovesPerTick = 3
	d := NewDaemon(h, m, cfg)
	clk := simclock.New()
	for id := uint64(1); id <= 10; id++ {
		touchN(h, clk, id, 3)
	}
	clk.Advance(100)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	if got := m.FastResident(); got != 3 {
		t.Fatalf("moves in one tick = %d, want MaxMovesPerTick=3", got)
	}
}

func TestDaemonPromoteErrorAborts(t *testing.T) {
	h := NewHeat(hl)
	m := newFakeMover()
	boom := errors.New("boom")
	m.err = boom
	d := NewDaemon(h, m, tickCfg(4))
	clk := simclock.New()
	touchN(h, clk, 1, 5)
	clk.Advance(100)
	if err := d.Tick(clk); !errors.Is(err, boom) {
		t.Fatalf("tick err = %v, want boom", err)
	}
}

func TestDaemonObserverCounters(t *testing.T) {
	h := NewHeat(hl)
	m := newFakeMover()
	d := NewDaemon(h, m, tickCfg(1))
	reg := obs.New(obs.Options{})
	d.SetObserver(reg, "db0")
	clk := simclock.New()
	touchN(h, clk, 1, 3)
	touchN(h, clk, 2, 4)
	clk.Advance(100)
	if err := d.Tick(clk); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["tier.db0.promotions"]; got != 1 {
		t.Fatalf("promotions counter = %d, want 1", got)
	}
	if got := snap.Gauges["tier.db0.fast_resident"]; got != 1 {
		t.Fatalf("fast_resident gauge = %d, want 1", got)
	}
}
