package txn

import (
	"fmt"

	"polarcxlmem/internal/simclock"
)

// RunBatch executes ops as ONE transaction: a single Begin, every op's
// statements in order, and a single Commit — so the per-transaction costs
// the commit path pays (the commit-marker append and log force, the
// background-flusher and checkpointer ticks, the begin/commit CPU
// bookkeeping) are amortized over the whole batch instead of charged per
// request. This is the execution primitive the dataplane router batches
// front-end requests onto (see internal/dataplane).
//
// Semantics are all-or-nothing: if any op fails, the whole batch is rolled
// back via logical compensation and the failing op's error is returned
// (wrapped with its index). Ops see each other's effects — they share the
// transaction — so independent requests batched together must not rely on
// isolation from their batch peers; the router only batches requests that
// are independent by construction (distinct sessions).
func (e *Engine) RunBatch(clk *simclock.Clock, ops []func(*Txn) error) error {
	if len(ops) == 0 {
		return nil
	}
	tx := e.Begin(clk)
	for i, op := range ops {
		if err := op(tx); err != nil {
			if rbErr := tx.Rollback(); rbErr != nil {
				return fmt.Errorf("txn: batch op %d: %w (rollback also failed: %v)", i, err, rbErr)
			}
			return fmt.Errorf("txn: batch op %d: %w", i, err)
		}
	}
	return tx.Commit()
}
