package txn

import (
	"fmt"
	"sync"
	"testing"

	"polarcxlmem/internal/simclock"
)

// TestConcurrentWorkersDisjointKeys runs several goroutine workers against
// one engine, each owning a disjoint key range, exercising the functional
// locking (pool mutexes, page latches, WAL mutex) under real concurrency.
// Run with -race in CI.
func TestConcurrentWorkersDisjointKeys(t *testing.T) {
	ev := newEnv(t)
	tr, err := ev.e.CreateTable(ev.clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := simclock.New()
			base := int64(w * 1_000_000)
			for i := int64(0); i < perWorker; i++ {
				tx := ev.e.Begin(clk)
				k := base + i
				if err := tx.Insert(tr, k, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, k, err)
					return
				}
				if i > 0 {
					if _, err := tx.Get(tr, base+i-1); err != nil {
						errs <- fmt.Errorf("worker %d get: %w", w, err)
						return
					}
				}
				if i%3 == 0 && i > 0 {
					if err := tx.Update(tr, base+i-1, []byte("updated")); err != nil {
						errs <- fmt.Errorf("worker %d update: %w", w, err)
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("worker %d commit: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	clk := simclock.New()
	if err := tr.Validate(clk); err != nil {
		t.Fatal(err)
	}
	n, err := tr.Count(clk)
	if err != nil || n != workers*perWorker {
		t.Fatalf("count = %d, want %d (%v)", n, workers*perWorker, err)
	}
}

// TestConcurrentReadersDuringWrites mixes read-only workers with one writer
// on overlapping keys: latch coupling must keep readers consistent (every
// read sees either the old or the new value, never torn bytes).
func TestConcurrentReadersDuringWrites(t *testing.T) {
	ev := newEnv(t)
	tr, err := ev.e.CreateTable(ev.clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	setup := ev.e.Begin(ev.clk)
	valA := []byte("AAAAAAAAAAAAAAAA")
	for k := int64(0); k < 200; k++ {
		if err := setup.Insert(tr, k, valA); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	valB := []byte("BBBBBBBBBBBBBBBB")
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	stop := make(chan struct{})
	// Writer flips values A->B.
	wg.Add(1)
	go func() {
		defer wg.Done()
		clk := simclock.New()
		for k := int64(0); k < 200; k++ {
			tx := ev.e.Begin(clk)
			if err := tx.Update(tr, k, valB); err != nil {
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
		}
		close(stop)
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clk := simclock.New()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := int64(0); k < 200; k += 17 {
					v, err := tr.Get(clk, k)
					if err != nil {
						errs <- err
						return
					}
					if string(v) != string(valA) && string(v) != string(valB) {
						errs <- fmt.Errorf("torn read at %d: %q", k, v)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
