// Package txn implements the transaction engine: user transactions over
// B+tree tables, a durable catalog, commit/rollback with logical undo, and
// checkpointing. It is the layer the workload generators drive, and it runs
// unchanged over every buffer pool — local DRAM, tiered RDMA, PolarCXLMem —
// which is the paper's deployment story: "This design minimally impacts the
// transaction engine, requiring only a few modifications during memory
// allocation" (§3.1).
package txn

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"polarcxlmem/internal/btree"
	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/checkpoint"
	"polarcxlmem/internal/flusher"
	"polarcxlmem/internal/mtr"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
	"polarcxlmem/internal/tier"
	"polarcxlmem/internal/wal"
)

// CatalogMetaID is the catalog tree's meta page id. The catalog is the
// first tree created on a fresh database, and page ids are allocated
// sequentially from 1, so this is a stable bootstrap address.
const CatalogMetaID = 1

// Engine is one database instance's transaction engine.
type Engine struct {
	pool  buffer.Pool
	log   *wal.Log
	store *storage.Store
	ids   *mtr.IDGen

	catalog *btree.Tree

	// Commit pipeline (all opt-in; nil means the classic inline path, which
	// the deterministic fault sweeps depend on staying byte-identical).
	gc atomic.Pointer[wal.GroupCommitter]
	fl atomic.Pointer[flusher.Flusher]
	cp atomic.Pointer[checkpoint.Checkpointer]
	td atomic.Pointer[tier.Daemon]

	mu     sync.Mutex
	tables map[string]*btree.Tree
}

// nameKey hashes a table name to a catalog key.
func nameKey(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & (1<<63 - 1))
}

// wireBarrier installs the write-ahead rule: before any page image reaches
// storage, the log is durable up to that page's LSN.
func (e *Engine) wireBarrier() {
	e.pool.SetFlushBarrier(func(clk *simclock.Clock, lsn uint64) {
		if lsn > e.log.Store().DurableLSN() {
			e.log.Flush(clk)
		}
	})
}

// Bootstrap creates a fresh database on an empty pool: the catalog tree and
// nothing else.
func Bootstrap(clk *simclock.Clock, pool buffer.Pool, log *wal.Log, store *storage.Store) (*Engine, error) {
	e := &Engine{pool: pool, log: log, store: store, ids: &mtr.IDGen{}, tables: make(map[string]*btree.Tree)}
	e.wireBarrier()
	cat, err := btree.Create(clk, pool, log, e.ids)
	if err != nil {
		return nil, err
	}
	if cat.MetaID() != CatalogMetaID {
		return nil, fmt.Errorf("txn: catalog meta page is %d, want %d (pool not fresh?)", cat.MetaID(), CatalogMetaID)
	}
	e.catalog = cat
	return e, nil
}

// Attach opens an existing database over a warm or recovered pool.
func Attach(clk *simclock.Clock, pool buffer.Pool, log *wal.Log, store *storage.Store) (*Engine, error) {
	e := &Engine{pool: pool, log: log, store: store, ids: &mtr.IDGen{}, tables: make(map[string]*btree.Tree)}
	e.wireBarrier()
	cat, err := btree.Open(clk, pool, log, e.ids, CatalogMetaID)
	if err != nil {
		return nil, err
	}
	e.catalog = cat
	// Unit ids restart above anything in the durable log so compensation
	// units never collide with logged ones. Scan from the truncation point:
	// checkpoint GC may have discarded the log's oldest history, and unit
	// ids only grow, so the surviving tail holds the maximum.
	var maxUnit uint64
	st := log.Store()
	if err := st.Iterate(st.TruncatedBefore(), func(r wal.Record) bool {
		if r.Txn > maxUnit {
			maxUnit = r.Txn
		}
		return true
	}); err != nil {
		return nil, fmt.Errorf("txn: attach log scan: %w", err)
	}
	e.ids.Bump(maxUnit)
	return e, nil
}

// IDs exposes the unit-id generator (recovery logs compensation units).
func (e *Engine) IDs() *mtr.IDGen { return e.ids }

// Pool exposes the engine's buffer pool.
func (e *Engine) Pool() buffer.Pool { return e.pool }

// Log exposes the engine's redo log handle.
func (e *Engine) Log() *wal.Log { return e.log }

// EnableGroupCommit routes transaction commit markers through a
// wal.GroupCommitter so concurrent committers share leader-driven log
// flushes instead of paying one device fsync each. Single-threaded callers
// see one flush per commit, exactly as before. Call once at setup, before
// transactions run.
func (e *Engine) EnableGroupCommit(pol wal.GroupPolicy) *wal.GroupCommitter {
	gc := wal.NewGroupCommitter(e.log, pol)
	e.gc.Store(gc)
	return gc
}

// GroupCommitter reports the engine's group committer, or nil when commits
// flush inline.
func (e *Engine) GroupCommitter() *wal.GroupCommitter { return e.gc.Load() }

// EnableBackgroundFlush attaches a dirty-page flusher daemon driven from the
// commit path: each commit ticks it, and when the virtual-time interval has
// elapsed it writes back a redo-budget-sized batch of dirty pages. Requires
// a pool with background-writeback support (every frametab-backed pool whose
// store implements frametab.WritebackStore); pools without it — the shared
// multi-primary pools — return an error. Call once at setup.
func (e *Engine) EnableBackgroundFlush(pol flusher.Policy) (*flusher.Flusher, error) {
	tgt, ok := e.pool.(flusher.Target)
	if !ok {
		return nil, fmt.Errorf("txn: pool %T does not support background flush", e.pool)
	}
	st := e.log.Store()
	fl := flusher.New(tgt, pol, func() int64 {
		// The backlog floor is the later of the store-recorded checkpoint
		// and the truncation point: fuzzy checkpoints record their LSN in
		// the CXL checkpoint area (not the store) and truncate the tail one
		// checkpoint behind, so the truncation point is the durable evidence
		// of the floor. Reading from the floor never trips ErrTruncated.
		floor := st.CheckpointLSN()
		if tb := st.TruncatedBefore(); tb > floor+1 {
			floor = tb - 1
		}
		n, err := st.BytesFrom(floor + 1)
		if err != nil {
			return 0 // unreachable: floor+1 >= truncation point by construction
		}
		return n
	})
	e.fl.Store(fl)
	return fl, nil
}

// Flusher reports the engine's background flusher, or nil when eviction
// writes happen inline only.
func (e *Engine) Flusher() *flusher.Flusher { return e.fl.Load() }

// EnableCheckpoints attaches a continuous fuzzy checkpointer driven from the
// commit path: each commit ticks it (right after the background flusher's
// tick), and when the virtual-time interval has elapsed and the flusher has
// the dirty backlog below the policy watermark, it publishes a CXL-durable
// checkpoint record to area and truncates the redo log behind the previous
// checkpoint. Requires a pool with background-writeback support, like
// EnableBackgroundFlush. Call once at setup; pair it with a flusher, or the
// watermark may never be reached under write-heavy load.
func (e *Engine) EnableCheckpoints(area *checkpoint.Area, pol checkpoint.Policy) (*checkpoint.Checkpointer, error) {
	tgt, ok := e.pool.(flusher.Target)
	if !ok {
		return nil, fmt.Errorf("txn: pool %T does not support fuzzy checkpointing", e.pool)
	}
	cp := checkpoint.New(area, tgt, e.log, pol)
	e.cp.Store(cp)
	return cp, nil
}

// Checkpointer reports the engine's fuzzy checkpointer, or nil when only
// explicit Checkpoint calls record checkpoints.
func (e *Engine) Checkpointer() *checkpoint.Checkpointer { return e.cp.Load() }

// EnableTiering attaches a hot/cold placement daemon driven from the commit
// path, like the flusher and checkpointer: each commit ticks it, and when
// the virtual-time placement interval has elapsed it promotes the hottest
// pages into the pool's fast tier and demotes cold or over-budget ones. The
// caller builds the daemon (tier.NewDaemon over a pool implementing
// tier.Mover — see core.CXLPool.EnableTiering) so QoS policy stays in the
// facade's hands. Call once at setup.
func (e *Engine) EnableTiering(d *tier.Daemon) { e.td.Store(d) }

// Tiering reports the engine's placement daemon, or nil when page placement
// is static.
func (e *Engine) Tiering() *tier.Daemon { return e.td.Load() }

// commitUnit makes unit durable: tick the background flusher, the fuzzy
// checkpointer, and the tier placement daemon (when enabled), then append
// the commit marker and force it — through the group committer when enabled,
// else inline. All daemon ticks run BEFORE the marker append on purpose: if
// an injected crash fires during background writeback, mid-checkpoint, or
// mid-promotion, the unit is still uncommitted, so crash-sweep shadow
// accounting stays exact.
func (e *Engine) commitUnit(clk *simclock.Clock, unit uint64) error {
	if fl := e.fl.Load(); fl != nil {
		if err := fl.Tick(clk); err != nil {
			return fmt.Errorf("txn: background flush before commit of unit %d: %w", unit, err)
		}
	}
	if cp := e.cp.Load(); cp != nil {
		if err := cp.Tick(clk); err != nil {
			return fmt.Errorf("txn: checkpoint before commit of unit %d: %w", unit, err)
		}
	}
	if td := e.td.Load(); td != nil {
		if err := td.Tick(clk); err != nil {
			return fmt.Errorf("txn: tier placement before commit of unit %d: %w", unit, err)
		}
	}
	rec := wal.Record{Kind: wal.KTxnCommit, Txn: unit}
	if gc := e.gc.Load(); gc != nil {
		gc.Commit(clk, rec)
		return nil
	}
	e.log.Append(rec)
	e.log.Flush(clk)
	return nil
}

// CreateTable creates a named table and registers it in the catalog,
// durably.
func (e *Engine) CreateTable(clk *simclock.Clock, name string) (*btree.Tree, error) {
	e.mu.Lock()
	if _, ok := e.tables[name]; ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("txn: table %q exists", name)
	}
	e.mu.Unlock()
	tr, err := btree.Create(clk, e.pool, e.log, e.ids)
	if err != nil {
		return nil, err
	}
	var idb [8]byte
	for i := 0; i < 8; i++ {
		idb[i] = byte(tr.MetaID() >> (8 * i))
	}
	unit := e.ids.Next()
	if err := e.catalog.Insert(clk, unit, nameKey(name), idb[:]); err != nil {
		return nil, err
	}
	e.log.Append(wal.Record{Kind: wal.KTxnCommit, Txn: unit})
	e.log.Flush(clk)
	e.mu.Lock()
	e.tables[name] = tr
	e.mu.Unlock()
	return tr, nil
}

// Table opens a named table from the catalog (cached).
func (e *Engine) Table(clk *simclock.Clock, name string) (*btree.Tree, error) {
	e.mu.Lock()
	if tr, ok := e.tables[name]; ok {
		e.mu.Unlock()
		return tr, nil
	}
	e.mu.Unlock()
	v, err := e.catalog.Get(clk, nameKey(name))
	if err != nil {
		return nil, fmt.Errorf("txn: table %q: %w", name, err)
	}
	var metaID uint64
	for i := 0; i < 8; i++ {
		metaID |= uint64(v[i]) << (8 * i)
	}
	tr, err := btree.Open(clk, e.pool, e.log, e.ids, metaID)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.tables[name] = tr
	e.mu.Unlock()
	return tr, nil
}

// Checkpoint forces the log, flushes every dirty page, durably records the
// checkpoint LSN, and truncates the log below the PREVIOUS checkpoint.
// Call at quiescent points (no in-flight transactions): truncation assumes
// no undo older than a full checkpoint interval is ever needed, and
// recovery scans start at the latest checkpoint anyway. Keeping one full
// interval of history (rather than truncating to the new checkpoint)
// guards the edge where a crash lands exactly between SetCheckpoint and
// the first post-checkpoint flush.
func (e *Engine) Checkpoint(clk *simclock.Clock) error {
	prev := e.log.Store().CheckpointLSN()
	lsn := e.log.NextLSN() - 1
	e.log.Flush(clk)
	if err := e.pool.FlushAll(clk); err != nil {
		return err
	}
	e.log.Store().SetCheckpoint(clk, lsn)
	if prev > 0 {
		e.log.Store().TruncateBefore(prev)
	}
	return nil
}
