package txn

import (
	"fmt"

	"polarcxlmem/internal/btree"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/wal"
)

// Txn is one user transaction. Statements execute immediately through
// mini-transactions; the transaction's durability is decided by the
// KTxnCommit marker appended (and flushed) at Commit. Rollback applies the
// logical inverses in reverse order — correct even if SMOs have since moved
// the records — and then marks the unit committed so crash recovery never
// re-undoes it.
type Txn struct {
	e    *Engine
	clk  *simclock.Clock
	id   uint64
	undo []btree.Undo
	done bool
}

// Begin starts a transaction on clk's worker.
func (e *Engine) Begin(clk *simclock.Clock) *Txn {
	return &Txn{e: e, clk: clk, id: e.ids.Next()}
}

// ID reports the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Clock exposes the worker clock the transaction runs on, so callers that
// only see the Txn — e.g. request ops executing inside a dataplane batch —
// can charge per-statement CPU to the right clock.
func (t *Txn) Clock() *simclock.Clock { return t.clk }

func (t *Txn) active() error {
	if t.done {
		return fmt.Errorf("txn %d: already finished", t.id)
	}
	return nil
}

// Insert adds (key, val) to tr.
func (t *Txn) Insert(tr *btree.Tree, key int64, val []byte) error {
	if err := t.active(); err != nil {
		return err
	}
	if err := tr.Insert(t.clk, t.id, key, val); err != nil {
		return err
	}
	t.undo = append(t.undo, btree.Undo{Tree: tr, Kind: wal.KInsert, Key: key})
	return nil
}

// Update replaces key's value in tr.
func (t *Txn) Update(tr *btree.Tree, key int64, val []byte) error {
	if err := t.active(); err != nil {
		return err
	}
	old, err := tr.UpdateReturningOld(t.clk, t.id, key, val)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, btree.Undo{Tree: tr, Kind: wal.KUpdate, Key: key, Old: old})
	return nil
}

// Delete removes key from tr.
func (t *Txn) Delete(tr *btree.Tree, key int64) error {
	if err := t.active(); err != nil {
		return err
	}
	old, err := tr.DeleteReturningOld(t.clk, t.id, key)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, btree.Undo{Tree: tr, Kind: wal.KDelete, Key: key, Old: old})
	return nil
}

// Get reads key from tr (no locks held across statements: the engine's
// workloads are single-statement-consistent, as in sysbench).
func (t *Txn) Get(tr *btree.Tree, key int64) ([]byte, error) {
	if err := t.active(); err != nil {
		return nil, err
	}
	return tr.Get(t.clk, key)
}

// Scan reads up to limit records with key >= from.
func (t *Txn) Scan(tr *btree.Tree, from int64, limit int) ([]btree.KV, error) {
	if err := t.active(); err != nil {
		return nil, err
	}
	return tr.Scan(t.clk, from, limit)
}

// Commit appends the durable commit marker and forces the log — through the
// engine's group committer when one is enabled (concurrent committers then
// share a single leader-driven flush), inline otherwise.
func (t *Txn) Commit() error {
	if err := t.active(); err != nil {
		return err
	}
	t.done = true
	return t.e.commitUnit(t.clk, t.id)
}

// Rollback undoes every statement in reverse order via logical compensation
// and then commits the unit (net effect: nothing happened, durably).
func (t *Txn) Rollback() error {
	if err := t.active(); err != nil {
		return err
	}
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i].Apply(t.clk, t.id); err != nil {
			return fmt.Errorf("txn %d: undo step %d: %w", t.id, i, err)
		}
	}
	return t.e.commitUnit(t.clk, t.id)
}
