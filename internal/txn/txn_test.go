package txn

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"polarcxlmem/internal/btree"
	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
	"polarcxlmem/internal/wal"
)

type env struct {
	e     *Engine
	clk   *simclock.Clock
	pool  buffer.Pool
	log   *wal.Log
	ws    *wal.Store
	store *storage.Store
}

func newEnv(t *testing.T) *env {
	t.Helper()
	store := storage.New(storage.Config{})
	pool := buffer.NewDRAMPool(store, 1024, cxl.DRAMProfile())
	ws := wal.NewStore(0, 0)
	log := wal.Attach(ws)
	clk := simclock.New()
	e, err := Bootstrap(clk, pool, log, store)
	if err != nil {
		t.Fatal(err)
	}
	return &env{e: e, clk: clk, pool: pool, log: log, ws: ws, store: store}
}

func TestCreateAndReopenTable(t *testing.T) {
	ev := newEnv(t)
	tr, err := ev.e.CreateTable(ev.clk, "users")
	if err != nil {
		t.Fatal(err)
	}
	tx := ev.e.Begin(ev.clk)
	if err := tx.Insert(tr, 1, []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A second engine over the same pool finds the table via the catalog.
	e2, err := Attach(ev.clk, ev.pool, ev.log, ev.store)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := e2.Table(ev.clk, "users")
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr2.Get(ev.clk, 1)
	if err != nil || string(v) != "alice" {
		t.Fatalf("reopened get = %q, %v", v, err)
	}
	if _, err := e2.Table(ev.clk, "ghosts"); err == nil {
		t.Fatal("opened nonexistent table")
	}
	if _, err := ev.e.CreateTable(ev.clk, "users"); err == nil {
		t.Fatal("duplicate table created")
	}
}

func TestCommitForcesLog(t *testing.T) {
	ev := newEnv(t)
	tr, _ := ev.e.CreateTable(ev.clk, "t")
	durableBefore := ev.ws.DurableLSN()
	tx := ev.e.Begin(ev.clk)
	tx.Insert(tr, 5, []byte("five"))
	if ev.ws.DurableLSN() != durableBefore {
		t.Fatal("statement flushed the log before commit")
	}
	tx.Commit()
	if ev.ws.DurableLSN() <= durableBefore {
		t.Fatal("commit did not force the log")
	}
	// Commit marker is durable.
	found := false
	ev.ws.Iterate(1, func(r wal.Record) bool {
		if r.Kind == wal.KTxnCommit && r.Txn == tx.ID() {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("commit marker missing")
	}
}

func TestRollbackRestoresState(t *testing.T) {
	ev := newEnv(t)
	tr, _ := ev.e.CreateTable(ev.clk, "t")
	setup := ev.e.Begin(ev.clk)
	setup.Insert(tr, 1, []byte("keep"))
	setup.Insert(tr, 2, []byte("to-update"))
	setup.Insert(tr, 3, []byte("to-delete"))
	setup.Commit()

	tx := ev.e.Begin(ev.clk)
	if err := tx.Insert(tr, 10, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tr, 2, []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tr, 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Everything back to the pre-transaction state.
	if _, err := tr.Get(ev.clk, 10); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Fatal("rolled-back insert persisted")
	}
	v, err := tr.Get(ev.clk, 2)
	if err != nil || string(v) != "to-update" {
		t.Fatalf("rolled-back update: %q, %v", v, err)
	}
	v, err = tr.Get(ev.clk, 3)
	if err != nil || string(v) != "to-delete" {
		t.Fatalf("rolled-back delete: %q, %v", v, err)
	}
	if err := tr.Validate(ev.clk); err != nil {
		t.Fatal(err)
	}
}

func TestTxnFinishedGuards(t *testing.T) {
	ev := newEnv(t)
	tr, _ := ev.e.CreateTable(ev.clk, "t")
	tx := ev.e.Begin(ev.clk)
	tx.Commit()
	if err := tx.Insert(tr, 1, []byte("x")); err == nil {
		t.Fatal("insert after commit accepted")
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	if err := tx.Rollback(); err == nil {
		t.Fatal("rollback after commit accepted")
	}
	if _, err := tx.Get(tr, 1); err == nil {
		t.Fatal("get after commit accepted")
	}
	if _, err := tx.Scan(tr, 0, 1); err == nil {
		t.Fatal("scan after commit accepted")
	}
}

func TestCheckpointFlushesAndRecordsLSN(t *testing.T) {
	ev := newEnv(t)
	tr, _ := ev.e.CreateTable(ev.clk, "t")
	tx := ev.e.Begin(ev.clk)
	for k := int64(0); k < 100; k++ {
		tx.Insert(tr, k, []byte(fmt.Sprintf("v%d", k)))
	}
	tx.Commit()
	if err := ev.e.Checkpoint(ev.clk); err != nil {
		t.Fatal(err)
	}
	if ev.ws.CheckpointLSN() == 0 {
		t.Fatal("checkpoint LSN not recorded")
	}
	if ev.ws.CheckpointLSN() > ev.ws.DurableLSN() {
		t.Fatal("checkpoint beyond durable tail")
	}
	// All table pages must be durable now: a fresh DRAM pool over the same
	// storage can read everything without the log.
	pool2 := buffer.NewDRAMPool(ev.store, 1024, cxl.DRAMProfile())
	e2, err := Attach(ev.clk, pool2, wal.Attach(ev.ws), ev.store)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := e2.Table(ev.clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 100; k++ {
		v, err := tr2.Get(ev.clk, k)
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", k))) {
			t.Fatalf("post-checkpoint get(%d) = %q, %v", k, v, err)
		}
	}
}

func TestWriteAheadRuleOnEviction(t *testing.T) {
	// A tiny pool forces dirty evictions mid-transaction; the flush barrier
	// must make the log durable up to the page LSN before the page image
	// lands on storage.
	store := storage.New(storage.Config{})
	pool := buffer.NewDRAMPool(store, 6, cxl.DRAMProfile())
	ws := wal.NewStore(0, 0)
	log := wal.Attach(ws)
	clk := simclock.New()
	e, err := Bootstrap(clk, pool, log, store)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.CreateTable(clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin(clk)
	val := make([]byte, 200)
	for k := int64(0); k < 800; k++ { // spills way past 6 frames
		if err := tx.Insert(tr, k, val); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	// Pages were evicted dirty; for every durable page image, its LSN must
	// be covered by the durable log.
	durable := ws.DurableLSN()
	if durable == 0 {
		t.Fatal("no log flushed despite dirty evictions")
	}
	if pool.Stats().Evictions == 0 {
		t.Fatal("test did not force evictions")
	}
	tx.Commit()
}
