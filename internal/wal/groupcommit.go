package wal

import (
	"runtime"
	"sync"
	"sync/atomic"

	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/simclock"
)

// GroupPolicy tunes batch formation in a GroupCommitter. The zero value
// selects the defaults.
type GroupPolicy struct {
	// MaxBatchBytes closes a batch to new joiners once its encoded record
	// bytes reach this size; zero means DefaultMaxBatchBytes. Large batches
	// trade commit latency for fewer device fsyncs.
	MaxBatchBytes int64
	// MaxWaitNanos bounds the virtual-time window a batch accepts joiners:
	// a committer arriving more than this after the batch opened starts the
	// next batch instead of stretching the current one. Zero means
	// DefaultMaxWaitNanos.
	MaxWaitNanos int64
}

// Group-commit policy defaults: a window twice the device fsync keeps the
// log device under ~50% fsync occupancy even at full batching, and a 256 KB
// batch is far above anything a commit-marker burst produces (the cap
// matters for bulk loads that commit large redo payloads).
const (
	DefaultMaxBatchBytes int64 = 256 << 10
	DefaultMaxWaitNanos  int64 = 50 * simclock.Microsecond
)

// Leader collection loop bounds (wall-clock scheduling, no virtual cost):
// the leader keeps yielding while new joiners keep arriving, and gives up
// after collectQuietRounds consecutive quiet yields or collectMaxRounds
// total. A lone committer exits after collectQuietRounds Goscheds.
const (
	collectQuietRounds = 4
	collectMaxRounds   = 1024
)

// batch is one leader-driven flush group.
type batch struct {
	openedV int64 // leader's arrival (virtual time, leader's clock)
	latestV int64 // latest member arrival seen so far
	bytes   int64 // encoded size of the members' records
	members int
	doneV   int64         // virtual completion time; valid once done is closed
	done    chan struct{} // closed after the leader's persist completes
}

// GroupCommitter batches concurrent committers onto shared leader-driven WAL
// flushes. The first committer to find no open batch becomes the leader: it
// opens a batch, queues behind any in-flight persist (flushMu), collects
// joiners, then closes the batch and drives ONE Log.Flush for the whole
// group. Followers piggyback: they append their commit marker, join the open
// batch, and sleep until the leader's flush lands, then advance their clocks
// to the batch's virtual completion time. One device fsync thus covers many
// commits — the classic ARIES / Aurora-lineage group commit the paper's
// log-path latency argument (§2.2) presumes.
//
// In virtual time the leader waits for its latest joiner (the batch window)
// before flushing, so a follower's commit latency is (leader flush completion
// − its own arrival) — observable per commit in the wal.commit_wait_ns
// histogram, with batch sizes in wal.batch_size.
type GroupCommitter struct {
	log *Log
	pol GroupPolicy

	mu  sync.Mutex // guards cur and the fields of the open batch
	cur *batch

	// flushMu serializes leader persists. While one leader's flush is in
	// flight, the next leader queues here and its batch soaks up arrivals —
	// that queueing is where batches come from under load.
	flushMu sync.Mutex

	batches atomic.Int64
	commits atomic.Int64

	obsP atomic.Pointer[gcObs]
}

// gcObs carries the committer's registry handles.
type gcObs struct {
	batchSize  *obs.Histogram // wal.batch_size: commits per flushed batch
	commitWait *obs.Histogram // wal.commit_wait_ns: durability wait per commit
	batchesC   *obs.Counter   // wal.batches
	commitsC   *obs.Counter   // wal.group_commits
}

// NewGroupCommitter builds a group committer over log. Zero policy fields
// select the defaults.
func NewGroupCommitter(log *Log, pol GroupPolicy) *GroupCommitter {
	if pol.MaxBatchBytes <= 0 {
		pol.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if pol.MaxWaitNanos <= 0 {
		pol.MaxWaitNanos = DefaultMaxWaitNanos
	}
	return &GroupCommitter{log: log, pol: pol}
}

// Policy reports the effective (defaulted) policy.
func (g *GroupCommitter) Policy() GroupPolicy { return g.pol }

// Batches reports how many leader flushes have completed.
func (g *GroupCommitter) Batches() int64 { return g.batches.Load() }

// Commits reports how many commits have been made durable.
func (g *GroupCommitter) Commits() int64 { return g.commits.Load() }

// SetObserver registers the committer's metrics (wal.batch_size,
// wal.commit_wait_ns, wal.batches, wal.group_commits) with reg; nil
// detaches.
func (g *GroupCommitter) SetObserver(reg *obs.Registry) {
	if reg == nil {
		g.obsP.Store(nil)
		return
	}
	g.obsP.Store(&gcObs{
		batchSize:  reg.Histogram("wal.batch_size"),
		commitWait: reg.Histogram("wal.commit_wait_ns"),
		batchesC:   reg.Counter("wal.batches"),
		commitsC:   reg.Counter("wal.group_commits"),
	})
}

// Commit appends rec (a commit marker, typically) and returns its LSN once
// it is durable, either by leading a batch flush or by piggybacking on one.
// Safe for concurrent committers, each with its own clock; single-threaded
// callers see one flush per commit, exactly like Append+Flush, so
// deterministic fault-sweep runs are unaffected by enabling group commit.
func (g *GroupCommitter) Commit(clk *simclock.Clock, rec Record) uint64 {
	lsn := g.log.Append(rec)
	arrival := clk.Now()
	size := rec.EncodedSize()
	g.commits.Add(1)

	g.mu.Lock()
	if b := g.cur; b != nil &&
		arrival-b.openedV <= g.pol.MaxWaitNanos &&
		b.bytes+size <= g.pol.MaxBatchBytes {
		// Follower: the marker is already in the Log buffer (appended above,
		// before joining), so the leader's flush snapshot will include it.
		b.members++
		b.bytes += size
		if arrival > b.latestV {
			b.latestV = arrival
		}
		g.mu.Unlock()
		<-b.done
		clk.AdvanceTo(b.doneV)
		if o := g.obsP.Load(); o != nil {
			o.commitsC.Inc()
			o.commitWait.Observe(b.doneV - arrival)
		}
		return lsn
	}
	b := &batch{openedV: arrival, latestV: arrival, bytes: size, members: 1, done: make(chan struct{})}
	g.cur = b
	g.mu.Unlock()

	// Leader: queue behind any in-flight persist, then hold the collection
	// window open while joiners keep arriving (cooperative yields; no
	// virtual cost — the virtual window is bounded by MaxWaitNanos at join
	// time).
	g.flushMu.Lock()
	last, quiet := 1, 0
	for spins := 0; quiet < collectQuietRounds && spins < collectMaxRounds; spins++ {
		runtime.Gosched()
		g.mu.Lock()
		m, bytes := b.members, b.bytes
		g.mu.Unlock()
		if bytes >= g.pol.MaxBatchBytes {
			break
		}
		if m == last {
			quiet++
		} else {
			last, quiet = m, 0
		}
	}
	// Close the batch; later arrivals lead the next one.
	g.mu.Lock()
	if g.cur == b {
		g.cur = nil
	}
	members, latest := b.members, b.latestV
	g.mu.Unlock()

	// Wait (in virtual time) for the latest joiner, then drive one flush for
	// the whole group. Every member's record was appended before it joined,
	// and joins stopped when the batch closed, so the flush snapshot covers
	// the batch completely.
	clk.AdvanceTo(latest)
	g.log.Flush(clk)
	b.doneV = clk.Now()
	g.flushMu.Unlock()
	g.batches.Add(1)
	if o := g.obsP.Load(); o != nil {
		o.batchesC.Inc()
		o.commitsC.Inc()
		o.batchSize.Observe(int64(members))
		o.commitWait.Observe(b.doneV - arrival)
	}
	close(b.done)
	return lsn
}
