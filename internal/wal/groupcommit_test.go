package wal

import (
	"sort"
	"sync"
	"testing"

	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/simclock"
)

// TestConcurrentAppendFlushKeepsStoreSorted is the regression test for the
// Log concurrency contract: 8 committer goroutines appending and flushing
// concurrently must leave the durable tail sorted, complete, and with a
// truthful DurableLSN. Before flushMu, two flushes could persist their
// snapshots out of LSN order, silently breaking Iterate's binary search.
func TestConcurrentAppendFlushKeepsStoreSorted(t *testing.T) {
	const goroutines = 8
	const perG = 200
	ws := NewStore(0, 0)
	log := Attach(ws)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clk := simclock.New()
			for i := 0; i < perG; i++ {
				log.Append(Record{Kind: KTxnCommit, Txn: uint64(i + 1)})
				log.Flush(clk)
			}
		}()
	}
	wg.Wait()
	clk := simclock.New()
	log.Flush(clk) // drain any records buffered behind the last flushes

	var lsns []uint64
	ws.Iterate(1, func(r Record) bool {
		lsns = append(lsns, r.LSN)
		return true
	})
	if len(lsns) != goroutines*perG {
		t.Fatalf("durable records = %d, want %d", len(lsns), goroutines*perG)
	}
	if !sort.SliceIsSorted(lsns, func(i, j int) bool { return lsns[i] < lsns[j] }) {
		t.Fatal("durable tail is not sorted by LSN")
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("lsns[%d] = %d, want %d (gap or duplicate)", i, lsn, i+1)
		}
	}
	if got, want := ws.DurableLSN(), uint64(goroutines*perG); got != want {
		t.Fatalf("DurableLSN = %d, want %d", got, want)
	}
}

// TestGroupCommitSingleCommitterMatchesDirectFlush: with one committer the
// group committer must behave exactly like Append+Flush — one batch per
// commit, identical virtual cost — so enabling it never perturbs
// deterministic single-threaded runs (the crash-sweep harness relies on
// this).
func TestGroupCommitSingleCommitterMatchesDirectFlush(t *testing.T) {
	direct := simclock.New()
	wsD := NewStore(0, 0)
	logD := Attach(wsD)
	for i := 0; i < 10; i++ {
		logD.Append(Record{Kind: KTxnCommit, Txn: uint64(i + 1)})
		logD.Flush(direct)
	}

	grouped := simclock.New()
	wsG := NewStore(0, 0)
	gc := NewGroupCommitter(Attach(wsG), GroupPolicy{})
	for i := 0; i < 10; i++ {
		gc.Commit(grouped, Record{Kind: KTxnCommit, Txn: uint64(i + 1)})
	}

	if direct.Now() != grouped.Now() {
		t.Fatalf("virtual cost diverged: direct %d ns, grouped %d ns", direct.Now(), grouped.Now())
	}
	if gc.Batches() != 10 || gc.Commits() != 10 {
		t.Fatalf("batches/commits = %d/%d, want 10/10", gc.Batches(), gc.Commits())
	}
	if wsG.DurableLSN() != wsD.DurableLSN() {
		t.Fatalf("durable LSN diverged: %d vs %d", wsG.DurableLSN(), wsD.DurableLSN())
	}
}

// TestGroupCommitConcurrentDurability: every Commit return implies the
// record is durable, under 8 concurrent committers; batches must never
// exceed commits, and every committed record must be in the durable tail.
func TestGroupCommitConcurrentDurability(t *testing.T) {
	const goroutines = 8
	const perG = 150
	ws := NewStore(0, 0)
	gc := NewGroupCommitter(Attach(ws), GroupPolicy{})
	reg := obs.New(obs.Options{})
	gc.SetObserver(reg)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			clk := simclock.New()
			for i := 0; i < perG; i++ {
				txn := uint64(g*perG + i + 1)
				lsn := gc.Commit(clk, Record{Kind: KTxnCommit, Txn: txn})
				if d := ws.DurableLSN(); d < lsn {
					t.Errorf("commit of txn %d returned at LSN %d but DurableLSN is %d", txn, lsn, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if gc.Commits() != total {
		t.Fatalf("Commits = %d, want %d", gc.Commits(), total)
	}
	if gc.Batches() > gc.Commits() || gc.Batches() <= 0 {
		t.Fatalf("Batches = %d out of range (commits %d)", gc.Batches(), gc.Commits())
	}
	seen := make(map[uint64]bool)
	ws.Iterate(1, func(r Record) bool {
		seen[r.Txn] = true
		return true
	})
	for txn := uint64(1); txn <= uint64(total); txn++ {
		if !seen[txn] {
			t.Fatalf("committed txn %d missing from the durable tail", txn)
		}
	}
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["wal.batch_size"]; !ok || h.Count != gc.Batches() {
		t.Fatalf("wal.batch_size histogram: %+v, want count %d", h, gc.Batches())
	}
	if h, ok := snap.Histograms["wal.commit_wait_ns"]; !ok || h.Count != total {
		t.Fatalf("wal.commit_wait_ns histogram: %+v, want count %d", h, total)
	}
}

// TestGroupCommitBytesCapClosesBatch: a record larger than the remaining
// batch budget starts its own batch rather than stretching the open one.
func TestGroupCommitBytesCapClosesBatch(t *testing.T) {
	ws := NewStore(0, 0)
	gc := NewGroupCommitter(Attach(ws), GroupPolicy{MaxBatchBytes: 1})
	clk := simclock.New()
	for i := 0; i < 5; i++ {
		gc.Commit(clk, Record{Kind: KTxnCommit, Txn: uint64(i + 1)})
	}
	if gc.Batches() != 5 {
		t.Fatalf("with a 1-byte cap every commit must flush alone: batches = %d", gc.Batches())
	}
}

// TestFsyncOccupiesLogDevice: two committers flushing "simultaneously" in
// virtual time serialize on the device — the second flush completes one full
// fsync later, not at the same instant. This is the modeling fix that makes
// per-transaction flushing an IOPS wall worth batching away.
func TestFsyncOccupiesLogDevice(t *testing.T) {
	ws := NewStore(0, 0)
	log := Attach(ws)
	a, b := simclock.New(), simclock.New()
	log.Append(Record{Kind: KTxnCommit, Txn: 1})
	log.Flush(a)
	log.Append(Record{Kind: KTxnCommit, Txn: 2})
	log.Flush(b) // b starts at virtual 0 too, but the device is busy
	if b.Now() <= a.Now() {
		t.Fatalf("second flush must queue behind the first: a=%d b=%d", a.Now(), b.Now())
	}
	if b.Now() < 2*DefaultFsyncNanos {
		t.Fatalf("second flush completed at %d ns, want >= two fsyncs (%d)", b.Now(), 2*DefaultFsyncNanos)
	}
}
