package wal

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"polarcxlmem/internal/simclock"
)

// TestTruncatePrefixProperty: under any random interleaving of appends,
// flushes and truncations, the store behaves like a log with a monotone
// truncation point —
//
//   - every LSN at or above the truncation point is readable, in order,
//     dense up to the durable LSN;
//   - every scan starting below the truncation point fails with the typed
//     ErrTruncated (and touches no records);
//   - the truncation point only ever moves up, even when TruncateBefore is
//     called with a lower LSN than a previous call.
func TestTruncatePrefixProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		store := NewStore(0, 0)
		log := Attach(store)
		clk := simclock.New()
		var appended uint64
		for op := 0; op < 300; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // append
				log.Append(Record{Kind: KInsert, Page: uint64(rng.Intn(50))})
				appended++
			case 5, 6: // flush
				log.Flush(clk)
			default: // truncate at a random LSN — below, inside, or above the
				// already-truncated range (TruncateBefore must tolerate all)
				cut := uint64(rng.Int63n(int64(appended) + 2))
				log.TruncateBefore(cut)
			}
			tb := store.TruncatedBefore()
			if tb < 1 {
				return false // truncation point below the first LSN ever
			}
			// Scan from the truncation point: dense, ascending, ending at the
			// durable LSN (or empty when everything durable was truncated).
			want := tb
			ok := true
			if err := store.Iterate(tb, func(r Record) bool {
				if r.LSN != want {
					ok = false
					return false
				}
				want++
				return true
			}); err != nil || !ok {
				return false
			}
			if d := store.DurableLSN(); d >= tb && want != d+1 {
				return false // surviving tail not dense up to durable
			}
			// Scan from below the truncation point: typed error, no records.
			if tb > 1 {
				below := uint64(1 + rng.Int63n(int64(tb)-1))
				touched := false
				err := store.Iterate(below, func(Record) bool { touched = true; return true })
				if !errors.Is(err, ErrTruncated) || touched {
					return false
				}
				if _, err := store.BytesFrom(below); !errors.Is(err, ErrTruncated) {
					return false
				}
			}
			// Monotonicity: re-truncating at 0/1 must not move the point down.
			log.TruncateBefore(1)
			if store.TruncatedBefore() != tb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentTruncateAndAppend exercises TruncateBefore racing appends,
// flushes, and scans across 8 goroutines (run with -race). Invariants are
// the weak ones that survive true concurrency: the truncation point is
// monotone, scans from at-or-above the observed truncation point never see
// an LSN below it, and scans from below it get ErrTruncated.
func TestConcurrentTruncateAndAppend(t *testing.T) {
	store := NewStore(0, 0)
	log := Attach(store)
	const workers, per = 8, 150
	var maxCut atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			clk := simclock.New()
			var lastTB uint64
			for i := 0; i < per; i++ {
				switch rng.Intn(4) {
				case 0:
					log.Append(Record{Kind: KInsert, Page: uint64(w)})
				case 1:
					log.Flush(clk)
				case 2:
					d := store.DurableLSN()
					if d == 0 {
						continue
					}
					cut := 1 + uint64(rng.Int63n(int64(d)))
					// Track the highest cut ever requested; the store's point
					// must end at least this high.
					for {
						cur := maxCut.Load()
						if cut <= cur || maxCut.CompareAndSwap(cur, cut) {
							break
						}
					}
					log.TruncateBefore(cut)
				default:
					tb := store.TruncatedBefore()
					if tb < lastTB {
						errs <- errors.New("truncation point moved down")
						return
					}
					lastTB = tb
					if err := store.Iterate(tb, func(r Record) bool {
						if r.LSN < tb {
							errs <- errors.New("scan returned record below its from-LSN")
							return false
						}
						return true
					}); err != nil && !errors.Is(err, ErrTruncated) {
						// A concurrent truncation may outrun the tb we read;
						// any other error is a bug.
						errs <- err
						return
					}
					if tb > 1 {
						if err := store.Iterate(tb-1, func(Record) bool { return true }); !errors.Is(err, ErrTruncated) {
							errs <- errors.New("scan below truncation point did not return ErrTruncated")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if tb := store.TruncatedBefore(); tb < maxCut.Load() {
		t.Fatalf("final truncation point %d below highest requested cut %d", tb, maxCut.Load())
	}
}
