// Package wal implements the ARIES-style redo log.
//
// The split mirrors the paper's crash model (§3.2): Log is the host-side
// handle with an in-DRAM record buffer — lost on a crash, which is why
// PolarRecv must treat pages whose LSN exceeds the durable LSN as "too new"
// and rebuild them — while Store is the durable tail on shared storage,
// which survives. Transactions append redo records as they modify pages;
// commit (and mini-transaction commit, for B-tree SMOs) forces a group
// flush of the buffer to the Store.
package wal

import (
	"fmt"
	"sort"
	"sync"

	"polarcxlmem/internal/simclock"
)

// Kind enumerates redo record types.
type Kind uint8

// Redo record kinds. Page-level records are logical redo: applying one
// replays the page operation. Control records mark transaction boundaries
// and checkpoints.
const (
	KInsert Kind = iota + 1
	KUpdate
	KDelete
	KPageInit
	KSetRightSib
	KSetAux
	KTxnCommit
	KMTRCommit
	KCheckpoint
)

// String implements fmt.Stringer for log diagnostics.
func (k Kind) String() string {
	switch k {
	case KInsert:
		return "insert"
	case KUpdate:
		return "update"
	case KDelete:
		return "delete"
	case KPageInit:
		return "page-init"
	case KSetRightSib:
		return "set-right-sib"
	case KSetAux:
		return "set-aux"
	case KTxnCommit:
		return "txn-commit"
	case KMTRCommit:
		return "mtr-commit"
	case KCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one redo log record.
type Record struct {
	LSN   uint64
	Page  uint64 // target page id (0 for control records)
	Txn   uint64 // owning transaction / mini-transaction id
	Kind  Kind
	Key   int64
	Level uint16 // KPageInit: btree level
	PType uint16 // KPageInit: page type
	Ref   uint64 // KSetRightSib/KSetAux: the stored id/word
	Value []byte // KInsert/KUpdate: record payload
	Old   []byte // KUpdate/KDelete: before-image, for transaction undo
}

// EncodedSize reports the on-disk size used for bandwidth accounting.
func (r Record) EncodedSize() int64 {
	return 8 + 8 + 8 + 1 + 8 + 2 + 2 + 8 + 4 + int64(len(r.Value)) + 4 + int64(len(r.Old))
}

// Store is the durable log tail. It lives on shared storage and survives
// host crashes.
type Store struct {
	bw    *simclock.Resource
	fsync int64

	mu            sync.Mutex
	records       []Record // ascending LSN
	durableLSN    uint64
	checkpointLSN uint64
}

// Default log-device parameters: a PolarFS-class replicated log store.
const (
	DefaultLogBandwidth = 2e9    // bytes per second
	DefaultFsyncNanos   = 25_000 // per group-commit flush
)

// NewStore returns an empty durable log store. Zero arguments select the
// defaults.
func NewStore(bandwidth float64, fsyncNanos int64) *Store {
	if bandwidth == 0 {
		bandwidth = DefaultLogBandwidth
	}
	if fsyncNanos == 0 {
		fsyncNanos = DefaultFsyncNanos
	}
	return &Store{bw: simclock.NewResource("wal-dev", bandwidth), fsync: fsyncNanos}
}

// persist appends recs (ascending LSN) durably, charging clk. The fsync
// occupies the log DEVICE, not just the caller: concurrent flushes serialize
// on the device queue in virtual time, which is the per-commit IOPS wall
// that group commit exists to amortize. A lone caller pays exactly the old
// fsync-then-bytes cost.
func (s *Store) persist(clk *simclock.Clock, recs []Record) {
	if len(recs) == 0 {
		return
	}
	var bytes int64
	for _, r := range recs {
		bytes += r.EncodedSize()
	}
	s.bw.Occupy(clk, s.fsync)
	s.bw.Use(clk, bytes)
	s.mu.Lock()
	s.records = append(s.records, recs...)
	if last := recs[len(recs)-1].LSN; last > s.durableLSN {
		s.durableLSN = last
	}
	s.mu.Unlock()
}

// DurableLSN reports the highest LSN persisted. Records above it were in a
// DRAM buffer and are gone after a crash.
func (s *Store) DurableLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durableLSN
}

// CheckpointLSN reports the last recorded checkpoint LSN; recovery scans
// from here.
func (s *Store) CheckpointLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLSN
}

// SetCheckpoint durably records a checkpoint at lsn.
func (s *Store) SetCheckpoint(clk *simclock.Clock, lsn uint64) {
	clk.Advance(s.fsync)
	s.mu.Lock()
	if lsn > s.checkpointLSN {
		s.checkpointLSN = lsn
	}
	s.mu.Unlock()
}

// Iterate calls fn for every durable record with LSN >= from, in LSN order,
// stopping early if fn returns false. The caller charges scan I/O costs.
func (s *Store) Iterate(from uint64, fn func(Record) bool) {
	s.mu.Lock()
	recs := s.records
	s.mu.Unlock()
	i := sort.Search(len(recs), func(i int) bool { return recs[i].LSN >= from })
	for ; i < len(recs); i++ {
		if !fn(recs[i]) {
			return
		}
	}
}

// BytesFrom reports the encoded size of all durable records with LSN >= from
// (recovery charges this as sequential log-read I/O).
func (s *Store) BytesFrom(from uint64) int64 {
	var n int64
	s.Iterate(from, func(r Record) bool {
		n += r.EncodedSize()
		return true
	})
	return n
}

// TruncateBefore discards records below lsn (checkpoint garbage collection).
func (s *Store) TruncateBefore(lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.records), func(i int) bool { return s.records[i].LSN >= lsn })
	s.records = append([]Record(nil), s.records[i:]...)
}

// Device exposes the log bandwidth resource for stats.
func (s *Store) Device() *simclock.Resource { return s.bw }

// Log is the host-side redo log handle: an in-DRAM buffer of records not
// yet flushed. Dropping the Log without Flush models losing the redo buffer
// in a crash.
//
// Concurrency contract: Append and Flush are safe for concurrent committers.
// Append assigns LSNs under mu; Flush holds flushMu across the whole
// snapshot-and-persist step, so two concurrent flushes cannot hand the store
// overlapping or out-of-order record batches — each flush persists a strict
// LSN-contiguous extension of the previous one, keeping Store.records sorted
// (Iterate binary-searches it) and DurableLSN truthful. Records appended
// while a flush is in flight simply ride the next flush.
type Log struct {
	store *Store

	mu      sync.Mutex // guards buf and nextLSN (the Append path)
	buf     []Record
	nextLSN uint64

	// flushMu serializes Flush end to end. Without it, goroutine A could
	// snapshot LSNs 1..3, goroutine B snapshot 4..5, and B's persist could
	// land first — leaving the durable tail unsorted and DurableLSN claiming
	// 1..3 are durable while they are still in flight.
	flushMu sync.Mutex
}

// Attach opens a Log over store, continuing the LSN sequence after the
// durable tail (the restart path).
func Attach(store *Store) *Log {
	return &Log{store: store, nextLSN: store.DurableLSN() + 1}
}

// Append buffers rec, assigns it the next LSN, and returns that LSN. No I/O
// happens until Flush.
func (l *Log) Append(rec Record) uint64 {
	l.mu.Lock()
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.buf = append(l.buf, rec)
	l.mu.Unlock()
	return rec.LSN
}

// NextLSN reports the LSN the next Append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// BufferedBytes reports the encoded size of unflushed records.
func (l *Log) BufferedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, r := range l.buf {
		n += r.EncodedSize()
	}
	return n
}

// Flush group-commits every buffered record to the durable store, charging
// clk for the write. Safe for concurrent callers; see the Log contract.
func (l *Log) Flush(clk *simclock.Clock) {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	recs := l.buf
	l.buf = nil
	l.mu.Unlock()
	l.store.persist(clk, recs)
}

// Store exposes the durable store (recovery needs it after the Log died).
func (l *Log) Store() *Store { return l.store }
