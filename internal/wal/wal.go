// Package wal implements the ARIES-style redo log.
//
// The split mirrors the paper's crash model (§3.2): Log is the host-side
// handle with an in-DRAM record buffer — lost on a crash, which is why
// PolarRecv must treat pages whose LSN exceeds the durable LSN as "too new"
// and rebuild them — while Store is the durable tail on shared storage,
// which survives. Transactions append redo records as they modify pages;
// commit (and mini-transaction commit, for B-tree SMOs) forces a group
// flush of the buffer to the Store.
package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"polarcxlmem/internal/simclock"
)

// ErrTruncated reports a read below the log's truncation point: the records
// requested were discarded by TruncateBefore and can never be served again.
// Recovery paths that trip this have a checkpoint/truncation bookkeeping bug
// — the invariant is that truncation never passes the previous durable
// checkpoint, so a scan from any recorded checkpoint stays readable.
var ErrTruncated = errors.New("wal: records truncated below requested LSN")

// Kind enumerates redo record types.
type Kind uint8

// Redo record kinds. Page-level records are logical redo: applying one
// replays the page operation. Control records mark transaction boundaries
// and checkpoints.
const (
	KInsert Kind = iota + 1
	KUpdate
	KDelete
	KPageInit
	KSetRightSib
	KSetAux
	KTxnCommit
	KMTRCommit
	KCheckpoint
)

// String implements fmt.Stringer for log diagnostics.
func (k Kind) String() string {
	switch k {
	case KInsert:
		return "insert"
	case KUpdate:
		return "update"
	case KDelete:
		return "delete"
	case KPageInit:
		return "page-init"
	case KSetRightSib:
		return "set-right-sib"
	case KSetAux:
		return "set-aux"
	case KTxnCommit:
		return "txn-commit"
	case KMTRCommit:
		return "mtr-commit"
	case KCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one redo log record.
type Record struct {
	LSN   uint64
	Page  uint64 // target page id (0 for control records)
	Txn   uint64 // owning transaction / mini-transaction id
	Kind  Kind
	Key   int64
	Level uint16 // KPageInit: btree level
	PType uint16 // KPageInit: page type
	Ref   uint64 // KSetRightSib/KSetAux: the stored id/word
	Value []byte // KInsert/KUpdate: record payload
	Old   []byte // KUpdate/KDelete: before-image, for transaction undo
}

// EncodedSize reports the on-disk size used for bandwidth accounting.
func (r Record) EncodedSize() int64 {
	return 8 + 8 + 8 + 1 + 8 + 2 + 2 + 8 + 4 + int64(len(r.Value)) + 4 + int64(len(r.Old))
}

// Store is the durable log tail. It lives on shared storage and survives
// host crashes.
type Store struct {
	bw    *simclock.Resource
	fsync int64

	mu            sync.Mutex
	records       []Record // ascending LSN
	durableLSN    uint64
	checkpointLSN uint64

	// truncatedBefore is the lowest LSN still readable: every record below
	// it was discarded by TruncateBefore. LSNs start at 1, so 1 means
	// "nothing ever truncated".
	truncatedBefore uint64

	// open maps durable units (transactions and mini-transactions) that have
	// records on the durable tail but no durable commit marker yet to the
	// first LSN they logged. The fuzzy checkpointer's candidate LSN must stay
	// below every open unit's first record so undo information is never
	// truncated away.
	open map[uint64]uint64
}

// Default log-device parameters: a PolarFS-class replicated log store.
const (
	DefaultLogBandwidth = 2e9    // bytes per second
	DefaultFsyncNanos   = 25_000 // per group-commit flush
)

// NewStore returns an empty durable log store. Zero arguments select the
// defaults.
func NewStore(bandwidth float64, fsyncNanos int64) *Store {
	if bandwidth == 0 {
		bandwidth = DefaultLogBandwidth
	}
	if fsyncNanos == 0 {
		fsyncNanos = DefaultFsyncNanos
	}
	return &Store{
		bw:              simclock.NewResource("wal-dev", bandwidth),
		fsync:           fsyncNanos,
		truncatedBefore: 1,
		open:            make(map[uint64]uint64),
	}
}

// persist appends recs (ascending LSN) durably, charging clk. The fsync
// occupies the log DEVICE, not just the caller: concurrent flushes serialize
// on the device queue in virtual time, which is the per-commit IOPS wall
// that group commit exists to amortize. A lone caller pays exactly the old
// fsync-then-bytes cost.
func (s *Store) persist(clk *simclock.Clock, recs []Record) {
	if len(recs) == 0 {
		return
	}
	var bytes int64
	for _, r := range recs {
		bytes += r.EncodedSize()
	}
	s.bw.Occupy(clk, s.fsync)
	s.bw.Use(clk, bytes)
	s.mu.Lock()
	s.records = append(s.records, recs...)
	if last := recs[len(recs)-1].LSN; last > s.durableLSN {
		s.durableLSN = last
	}
	// Open-unit bookkeeping: a unit opens at its first durable record and
	// closes at its durable commit marker. Control records with no unit
	// (checkpoints) are ignored.
	for _, r := range recs {
		if r.Txn == 0 {
			continue
		}
		switch r.Kind {
		case KTxnCommit, KMTRCommit:
			delete(s.open, r.Txn)
		default:
			if _, ok := s.open[r.Txn]; !ok {
				s.open[r.Txn] = r.LSN
			}
		}
	}
	s.mu.Unlock()
}

// DurableLSN reports the highest LSN persisted. Records above it were in a
// DRAM buffer and are gone after a crash.
func (s *Store) DurableLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durableLSN
}

// CheckpointLSN reports the last recorded checkpoint LSN; recovery scans
// from here.
func (s *Store) CheckpointLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLSN
}

// SetCheckpoint durably records a checkpoint at lsn.
func (s *Store) SetCheckpoint(clk *simclock.Clock, lsn uint64) {
	clk.Advance(s.fsync)
	s.mu.Lock()
	if lsn > s.checkpointLSN {
		s.checkpointLSN = lsn
	}
	s.mu.Unlock()
}

// OldestOpenLSN reports the first LSN of the oldest durable unit that has no
// durable commit marker yet, and whether any such unit exists. The fuzzy
// checkpointer caps its candidate LSN at (oldest open − 1): truncating at or
// above an open unit's first record would destroy the before-images undo
// needs if the host dies before the unit commits.
func (s *Store) OldestOpenLSN() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var min uint64
	for _, first := range s.open {
		if min == 0 || first < min {
			min = first
		}
	}
	return min, min != 0
}

// Iterate calls fn for every durable record with LSN >= from, in LSN order,
// stopping early if fn returns false. The caller charges scan I/O costs.
// A from below the truncation point returns ErrTruncated (wrapped) without
// calling fn: the requested prefix no longer exists, and serving a silently
// shortened scan would corrupt recovery.
func (s *Store) Iterate(from uint64, fn func(Record) bool) error {
	if from < 1 {
		from = 1
	}
	s.mu.Lock()
	recs := s.records
	trunc := s.truncatedBefore
	s.mu.Unlock()
	if from < trunc {
		return fmt.Errorf("%w: LSN %d < truncation point %d", ErrTruncated, from, trunc)
	}
	i := sort.Search(len(recs), func(i int) bool { return recs[i].LSN >= from })
	for ; i < len(recs); i++ {
		if !fn(recs[i]) {
			return nil
		}
	}
	return nil
}

// BytesFrom reports the encoded size of all durable records with LSN >= from
// (recovery charges this as sequential log-read I/O). Like Iterate, a from
// below the truncation point returns ErrTruncated.
func (s *Store) BytesFrom(from uint64) (int64, error) {
	var n int64
	err := s.Iterate(from, func(r Record) bool {
		n += r.EncodedSize()
		return true
	})
	return n, err
}

// TruncateBefore discards records below lsn (checkpoint garbage collection)
// and advances the truncation point; reads below it fail with ErrTruncated
// from then on. The point is monotone — re-truncating lower is a no-op.
func (s *Store) TruncateBefore(lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lsn > s.truncatedBefore {
		s.truncatedBefore = lsn
	}
	i := sort.Search(len(s.records), func(i int) bool { return s.records[i].LSN >= lsn })
	s.records = append([]Record(nil), s.records[i:]...)
}

// TruncatedBefore reports the lowest LSN still readable (1 when nothing was
// ever truncated). Scans that must cover "everything the log still has"
// start here, not at 1.
func (s *Store) TruncatedBefore() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.truncatedBefore
}

// Device exposes the log bandwidth resource for stats.
func (s *Store) Device() *simclock.Resource { return s.bw }

// Log is the host-side redo log handle: an in-DRAM buffer of records not
// yet flushed. Dropping the Log without Flush models losing the redo buffer
// in a crash.
//
// Concurrency contract: Append and Flush are safe for concurrent committers.
// Append assigns LSNs under mu; Flush holds flushMu across the whole
// snapshot-and-persist step, so two concurrent flushes cannot hand the store
// overlapping or out-of-order record batches — each flush persists a strict
// LSN-contiguous extension of the previous one, keeping Store.records sorted
// (Iterate binary-searches it) and DurableLSN truthful. Records appended
// while a flush is in flight simply ride the next flush.
type Log struct {
	store *Store

	mu      sync.Mutex // guards buf and nextLSN (the Append path)
	buf     []Record
	nextLSN uint64

	// flushMu serializes Flush end to end. Without it, goroutine A could
	// snapshot LSNs 1..3, goroutine B snapshot 4..5, and B's persist could
	// land first — leaving the durable tail unsorted and DurableLSN claiming
	// 1..3 are durable while they are still in flight.
	flushMu sync.Mutex
}

// Attach opens a Log over store, continuing the LSN sequence after the
// durable tail (the restart path).
func Attach(store *Store) *Log {
	return &Log{store: store, nextLSN: store.DurableLSN() + 1}
}

// Append buffers rec, assigns it the next LSN, and returns that LSN. No I/O
// happens until Flush.
func (l *Log) Append(rec Record) uint64 {
	l.mu.Lock()
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.buf = append(l.buf, rec)
	l.mu.Unlock()
	return rec.LSN
}

// NextLSN reports the LSN the next Append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// BufferedBytes reports the encoded size of unflushed records.
func (l *Log) BufferedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, r := range l.buf {
		n += r.EncodedSize()
	}
	return n
}

// Flush group-commits every buffered record to the durable store, charging
// clk for the write. Safe for concurrent callers; see the Log contract.
func (l *Log) Flush(clk *simclock.Clock) {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	recs := l.buf
	l.buf = nil
	l.mu.Unlock()
	l.store.persist(clk, recs)
}

// TruncateBefore discards durable records below lsn — the host-side face of
// checkpoint garbage collection. Only the durable tail is affected; buffered
// (unflushed) records all carry LSNs above the durable tail and ride along
// untouched. Safe to call concurrently with Append and Flush: the store
// locks its record slice, and the truncation point only ever rises.
func (l *Log) TruncateBefore(lsn uint64) {
	l.store.TruncateBefore(lsn)
}

// Store exposes the durable store (recovery needs it after the Log died).
func (l *Log) Store() *Store { return l.store }
