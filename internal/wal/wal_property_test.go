package wal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"polarcxlmem/internal/simclock"
)

// TestDurablePrefixProperty: under any interleaving of appends, flushes and
// crashes (drop the Log, keep the Store), the durable store always holds a
// prefix of the appended sequence, LSNs are dense and ascending, and a
// restarted Log continues the sequence with no gap or overlap.
func TestDurablePrefixProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		store := NewStore(0, 0)
		log := Attach(store)
		clk := simclock.New()
		var appended uint64 // total records ever appended (== last LSN)
		var flushed uint64  // LSN high-water at last flush
		for op := 0; op < 200; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5: // append
				lsn := log.Append(Record{Kind: KInsert, Page: uint64(rng.Intn(50))})
				appended++
				if lsn != appended {
					return false // LSN not dense/ascending
				}
			case 6, 7: // flush
				log.Flush(clk)
				flushed = appended
				if store.DurableLSN() != flushed {
					return false
				}
			default: // crash: buffered tail lost
				log = Attach(store)
				appended = store.DurableLSN()
				flushed = appended
			}
			// Invariant: durable <= appended, and durable records form a
			// dense prefix 1..durable of what was appended before the last
			// crash boundary.
			if store.DurableLSN() > appended {
				return false
			}
		}
		// Iterate must see exactly 1..durableLSN in order.
		want := uint64(1)
		ok := true
		store.Iterate(1, func(r Record) bool {
			if r.LSN != want {
				ok = false
				return false
			}
			want++
			return true
		})
		return ok && want == store.DurableLSN()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitBatchesCost: flushing N buffered records costs one fsync,
// not N.
func TestGroupCommitBatchesCost(t *testing.T) {
	store := NewStore(0, 0)
	log := Attach(store)
	clk := simclock.New()
	for i := 0; i < 100; i++ {
		log.Append(Record{Kind: KInsert})
	}
	log.Flush(clk)
	grouped := clk.Now()

	store2 := NewStore(0, 0)
	log2 := Attach(store2)
	clk2 := simclock.New()
	for i := 0; i < 100; i++ {
		log2.Append(Record{Kind: KInsert})
		log2.Flush(clk2)
	}
	if grouped*10 >= clk2.Now() {
		t.Fatalf("group commit (%d ns) not ~100x cheaper than per-record flush (%d ns)", grouped, clk2.Now())
	}
}

// TestConcurrentAppendersGetUniqueLSNs exercises the log under real
// goroutine concurrency (run with -race).
func TestConcurrentAppendersGetUniqueLSNs(t *testing.T) {
	store := NewStore(0, 0)
	log := Attach(store)
	const workers, per = 8, 200
	ch := make(chan uint64, workers*per)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < per; i++ {
				ch <- log.Append(Record{Kind: KInsert})
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	close(ch)
	seen := make(map[uint64]bool)
	for lsn := range ch {
		if seen[lsn] {
			t.Fatalf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("%d unique LSNs, want %d", len(seen), workers*per)
	}
	clk := simclock.New()
	log.Flush(clk)
	if store.DurableLSN() != uint64(workers*per) {
		t.Fatalf("durable = %d", store.DurableLSN())
	}
}
