package wal

import (
	"errors"
	"testing"

	"polarcxlmem/internal/simclock"
)

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l := Attach(NewStore(0, 0))
	a := l.Append(Record{Kind: KInsert, Page: 1})
	b := l.Append(Record{Kind: KUpdate, Page: 1})
	if a != 1 || b != 2 {
		t.Fatalf("lsns = %d, %d", a, b)
	}
	if l.NextLSN() != 3 {
		t.Fatalf("next = %d", l.NextLSN())
	}
}

func TestFlushMakesDurable(t *testing.T) {
	s := NewStore(0, 0)
	l := Attach(s)
	clk := simclock.New()
	l.Append(Record{Kind: KInsert, Page: 1, Value: []byte("abc")})
	l.Append(Record{Kind: KTxnCommit, Txn: 9})
	if s.DurableLSN() != 0 {
		t.Fatal("records durable before flush")
	}
	l.Flush(clk)
	if s.DurableLSN() != 2 {
		t.Fatalf("durable = %d", s.DurableLSN())
	}
	if clk.Now() < DefaultFsyncNanos {
		t.Fatalf("flush charged %d ns", clk.Now())
	}
	var kinds []Kind
	s.Iterate(1, func(r Record) bool {
		kinds = append(kinds, r.Kind)
		return true
	})
	if len(kinds) != 2 || kinds[0] != KInsert || kinds[1] != KTxnCommit {
		t.Fatalf("iterated %v", kinds)
	}
}

func TestCrashLosesBufferedRecords(t *testing.T) {
	s := NewStore(0, 0)
	l := Attach(s)
	clk := simclock.New()
	l.Append(Record{Kind: KInsert, Page: 1})
	l.Flush(clk)
	l.Append(Record{Kind: KUpdate, Page: 1}) // never flushed
	// Crash: drop l. The store only has LSN 1.
	if s.DurableLSN() != 1 {
		t.Fatalf("durable = %d", s.DurableLSN())
	}
	// Restart continues the LSN sequence after the durable tail.
	l2 := Attach(s)
	if got := l2.Append(Record{Kind: KInsert, Page: 2}); got != 2 {
		t.Fatalf("post-restart lsn = %d (LSN hole or overlap)", got)
	}
}

func TestIterateFromMidpointAndBytes(t *testing.T) {
	s := NewStore(0, 0)
	l := Attach(s)
	clk := simclock.New()
	for i := 0; i < 10; i++ {
		l.Append(Record{Kind: KInsert, Page: uint64(i), Value: make([]byte, 10)})
	}
	l.Flush(clk)
	var got []uint64
	s.Iterate(6, func(r Record) bool {
		got = append(got, r.LSN)
		return true
	})
	if len(got) != 5 || got[0] != 6 {
		t.Fatalf("iterate from 6: %v", got)
	}
	perRec := Record{Kind: KInsert, Value: make([]byte, 10)}.EncodedSize()
	if n, err := s.BytesFrom(6); err != nil || n != 5*perRec {
		t.Fatalf("bytesFrom(6) = %d, %v", n, err)
	}
	// Early stop.
	count := 0
	s.Iterate(1, func(r Record) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop iterated %d", count)
	}
}

func TestCheckpointAndTruncate(t *testing.T) {
	s := NewStore(0, 0)
	l := Attach(s)
	clk := simclock.New()
	for i := 0; i < 10; i++ {
		l.Append(Record{Kind: KInsert, Page: uint64(i)})
	}
	l.Flush(clk)
	s.SetCheckpoint(clk, 5)
	if s.CheckpointLSN() != 5 {
		t.Fatalf("checkpoint = %d", s.CheckpointLSN())
	}
	s.SetCheckpoint(clk, 3) // must not regress
	if s.CheckpointLSN() != 5 {
		t.Fatal("checkpoint regressed")
	}
	s.TruncateBefore(5)
	if tb := s.TruncatedBefore(); tb != 5 {
		t.Fatalf("truncatedBefore = %d, want 5", tb)
	}
	// Reads below the truncation point are loud, not silently shortened.
	if err := s.Iterate(1, func(Record) bool { return true }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("iterate below truncation: err = %v, want ErrTruncated", err)
	}
	if _, err := s.BytesFrom(4); !errors.Is(err, ErrTruncated) {
		t.Fatalf("bytesFrom below truncation: err = %v, want ErrTruncated", err)
	}
	count := 0
	if err := s.Iterate(5, func(r Record) bool {
		if r.LSN < 5 {
			t.Fatalf("truncated record %d survived", r.LSN)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("after truncate: %d records", count)
	}
}

func TestBufferedBytes(t *testing.T) {
	l := Attach(NewStore(0, 0))
	if l.BufferedBytes() != 0 {
		t.Fatal("fresh log has buffered bytes")
	}
	r := Record{Kind: KInsert, Value: make([]byte, 100)}
	l.Append(r)
	if l.BufferedBytes() != r.EncodedSize() {
		t.Fatalf("buffered = %d, want %d", l.BufferedBytes(), r.EncodedSize())
	}
	clk := simclock.New()
	l.Flush(clk)
	if l.BufferedBytes() != 0 {
		t.Fatal("flush left buffered bytes")
	}
}

func TestFlushEmptyIsFree(t *testing.T) {
	l := Attach(NewStore(0, 0))
	clk := simclock.New()
	l.Flush(clk)
	if clk.Now() != 0 {
		t.Fatalf("empty flush charged %d ns", clk.Now())
	}
}

func TestKindString(t *testing.T) {
	for k := KInsert; k <= KCheckpoint; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("unknown kind string")
	}
}
