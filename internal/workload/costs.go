// Package workload implements the paper's three benchmarks — Sysbench
// (§4.2, §4.4), TPC-C and TATP (§4.4, Table 3) — in two forms:
//
//   - engine workloads (sysbench.go) drive a single-node transaction engine
//     through the full SQL-less statement pipeline: B+tree access through
//     whatever buffer pool the experiment wires in, redo logging, commits;
//   - sharing workloads (shared.go, tpcc.go, tatp.go) drive multi-primary
//     nodes through the record-level sharing protocol, with the paper's
//     N+1-group layout controlling the shared-data percentage.
//
// Per-statement CPU costs model the parse/optimizer/protocol work a real
// PolarDB instance spends per query; they are calibrated so that a 16-vCPU
// instance's uncontended throughput lands near the paper's single-instance
// numbers (≈300 K point-select QPS, ≈90 K range QPS, fig. 7-9), leaving the
// *differences* between memory designs to the measured substrate costs.
package workload

import "polarcxlmem/internal/simclock"

// Per-statement CPU service demands (ns). One statement consumes one vCPU
// for this long, in addition to the buffer/interconnect costs its data
// access actually incurs.
const (
	PointSelectCPU = 45_000
	RangeSelectCPU = 150_000 // 100-row scan: more executor + result marshalling
	UpdateCPU      = 48_000
	InsertCPU      = 52_000
	DeleteCPU      = 48_000
	BeginCommitCPU = 12_000 // transaction bookkeeping around the log force
)

// RangeLen is the sysbench range-query row count.
const RangeLen = 100

// chargeCPU advances the worker clock by a statement's CPU demand and
// returns the same amount so callers can accumulate a CPU-demand total for
// the performance model.
func chargeCPU(clk *simclock.Clock, ns int64) int64 {
	clk.Advance(ns)
	return ns
}
