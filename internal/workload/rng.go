package workload

import "math/rand"

// workerMix is a splitmix64 finalizer over (seed, worker) — the same
// construction internal/fault's chaos harness uses for (seed, index) — so
// adjacent workers get decorrelated streams and the whole family reproduces
// from one base seed.
func workerMix(seed int64, worker int) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(worker+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// WorkerRNG derives worker w's private random stream from a base seed.
// Workload generators take a *rand.Rand per call rather than sharing one, so
// parallel drivers — the dataplane router's workers, parallel pump loops —
// MUST give each worker its own child RNG: a single shared *rand.Rand races
// under -race and makes results scheduling-dependent. Child streams are
// deterministic functions of (seed, worker), so a parallel run's per-worker
// sequences are reproducible regardless of interleaving.
func WorkerRNG(seed int64, worker int) *rand.Rand {
	return rand.New(rand.NewSource(workerMix(seed, worker)))
}
