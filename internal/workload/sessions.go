package workload

import (
	"math/rand"
	"sync/atomic"
)

// SessionConfig sizes a simulated client-session population. The paper's
// deployment story (§2) is cloud tenants whose requests funnel through a
// front end before touching CXL-backed buffer pools; this models the front
// end's session table: millions of OPEN sessions, each a few bytes of state,
// of which only a bounded number have a request in flight at any instant
// (the dataplane router's queue depth, not the session count, bounds
// in-flight work).
type SessionConfig struct {
	// Sessions is the number of open sessions (default 1024).
	Sessions int
	// Tenants is the number of cloud tenants the sessions belong to
	// (default 16). Session-to-tenant assignment is Zipfian: a few hot
	// tenants own most sessions, the realistic multi-tenant skew.
	Tenants int
	// ZipfS is the Zipf skew exponent (> 1; default 1.2).
	ZipfS float64
	// ZipfV is the Zipf value offset (>= 1; default 1).
	ZipfV float64
	// Seed fixes tenant assignment and every derived per-worker stream.
	Seed int64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Sessions <= 0 {
		c.Sessions = 1024
	}
	if c.Tenants <= 0 {
		c.Tenants = 16
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1
	}
	return c
}

// Sessions is an open-session table: per-session tenant assignment plus
// race-safe issue/completion accounting. All mutating methods are safe for
// concurrent use from parallel workers.
type Sessions struct {
	cfg    SessionConfig
	tenant []uint32 // session -> tenant, Zipf-skewed

	issued    []atomic.Uint32 // requests issued per session
	touched   atomic.Int64    // sessions that issued >= 1 request
	completed atomic.Int64
	failed    atomic.Int64
}

// NewSessions builds the session table: every session is assigned a tenant
// by one seeded Zipf draw, so tenant load skew is deterministic in the seed.
func NewSessions(cfg SessionConfig) *Sessions {
	cfg = cfg.withDefaults()
	s := &Sessions{
		cfg:    cfg,
		tenant: make([]uint32, cfg.Sessions),
		issued: make([]atomic.Uint32, cfg.Sessions),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Tenants-1))
	for i := range s.tenant {
		s.tenant[i] = uint32(z.Uint64())
	}
	return s
}

// Open reports the number of open sessions.
func (s *Sessions) Open() int { return len(s.tenant) }

// Tenants reports the tenant count.
func (s *Sessions) Tenants() int { return s.cfg.Tenants }

// Tenant reports which tenant owns session i.
func (s *Sessions) Tenant(i int) int { return int(s.tenant[i]) }

// Issue records that session i put a request on the wire. The first issue
// of a session counts it as touched.
func (s *Sessions) Issue(i int) {
	if s.issued[i].Add(1) == 1 {
		s.touched.Add(1)
	}
}

// Done records a request completion for accounting (err non-nil counts as
// failed). Safe to call from the executing worker's goroutine.
func (s *Sessions) Done(err error) {
	if err != nil {
		s.failed.Add(1)
		return
	}
	s.completed.Add(1)
}

// Touched reports how many distinct sessions have issued at least one
// request.
func (s *Sessions) Touched() int64 { return s.touched.Load() }

// Completed reports successfully completed requests.
func (s *Sessions) Completed() int64 { return s.completed.Load() }

// Failed reports failed requests.
func (s *Sessions) Failed() int64 { return s.failed.Load() }

// TenantShare reports the fraction of sessions owned by tenant t (skew
// verification).
func (s *Sessions) TenantShare(t int) float64 {
	n := 0
	for _, tn := range s.tenant {
		if int(tn) == t {
			n++
		}
	}
	return float64(n) / float64(len(s.tenant))
}

// Stream is one pump worker's deterministic view of the session table:
// worker w of W walks sessions w, w+W, w+2W, ... (wrapping), with a private
// child RNG for op parameters. Two runs with the same (seed, worker count)
// produce identical per-worker streams regardless of scheduling; a Stream
// itself is single-goroutine state.
type Stream struct {
	s      *Sessions
	rng    *rand.Rand
	next   int
	stride int
}

// Stream returns worker w's session stream (0 <= w < workers).
func (s *Sessions) Stream(worker, workers int) *Stream {
	if workers <= 0 {
		workers = 1
	}
	return &Stream{
		s:      s,
		rng:    WorkerRNG(s.cfg.Seed, worker),
		next:   worker % len(s.tenant),
		stride: workers,
	}
}

// Next returns the stream's next session id, round-robin over the worker's
// stride so a long run touches every session the worker owns.
func (st *Stream) Next() int {
	i := st.next
	st.next += st.stride
	if st.next >= st.s.Open() {
		st.next %= st.stride
	}
	return i
}

// RNG exposes the stream's private child RNG for op parameters.
func (st *Stream) RNG() *rand.Rand { return st.rng }
