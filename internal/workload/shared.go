package workload

import (
	"fmt"
	"math/rand"

	"polarcxlmem/internal/page"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
)

// SharedNode is the record-level API both multi-primary node types expose
// (sharing.Node over CXL, sharing.RDMANode over RDMA).
type SharedNode interface {
	Read(clk *simclock.Clock, pageID uint64, off int64, buf []byte) error
	Write(clk *simclock.Clock, pageID uint64, off int64, data []byte) error
	ReadModifyWrite(clk *simclock.Clock, pageID uint64, off int64, length int, fn func([]byte)) error
}

// RowsPerPage is how many fixed-size sbtest rows a shared page holds.
const RowsPerPage = (page.Size - page.HeaderSize) / RowSize

// Layout maps the paper's §4.4 configuration onto page ids: "tables were
// divided into N+1 groups. The first N groups were designated as private,
// with each node exclusively accessing the tables within its assigned
// group. The final group was shared."
type Layout struct {
	Nodes         int
	PagesPerGroup int
	first         uint64 // first page id; groups are contiguous
}

// NewLayout seeds storage with (nodes+1)*pagesPerGroup pages of fixed-slot
// rows and returns the layout.
func NewLayout(clk *simclock.Clock, store *storage.Store, nodes, pagesPerGroup int) (*Layout, error) {
	l := &Layout{Nodes: nodes, PagesPerGroup: pagesPerGroup}
	total := (nodes + 1) * pagesPerGroup
	rng := rand.New(rand.NewSource(2))
	img := make([]byte, page.Size)
	for i := 0; i < total; i++ {
		id := store.AllocPageID()
		if i == 0 {
			l.first = id
		}
		rng.Read(img[page.HeaderSize:])
		if err := store.WritePage(clk, id, img); err != nil {
			return nil, fmt.Errorf("workload: seeding shared page %d: %w", id, err)
		}
	}
	return l, nil
}

// GroupPage reports the page id of page idx within group (group Nodes is
// the shared group).
func (l *Layout) GroupPage(group, idx int) uint64 {
	return l.first + uint64(group*l.PagesPerGroup+idx)
}

// RowAddr places row r of group on its page: returns (pageID, offset).
func (l *Layout) RowAddr(group, r int) (uint64, int64) {
	pg := (r / RowsPerPage) % l.PagesPerGroup
	slot := r % RowsPerPage
	return l.GroupPage(group, pg), int64(page.HeaderSize + slot*RowSize)
}

// TotalRows reports rows per group.
func (l *Layout) TotalRows() int { return l.PagesPerGroup * RowsPerPage }

// SharedSysbench is the adapted sysbench of §4.4: X% of queries target the
// shared group, the rest the node's private group.
type SharedSysbench struct {
	Layout    *Layout
	SharedPct int // 0..100

	Queries int64
	Txns    int64
	CPUNs   int64
}

// pickRowForTest exposes routing for tests.
func (w *SharedSysbench) pickRowForTest(nodeIdx int, rng *rand.Rand) (uint64, int64) {
	return w.pickRow(nodeIdx, rng)
}

// pickRow chooses a target row for node nodeIdx.
func (w *SharedSysbench) pickRow(nodeIdx int, rng *rand.Rand) (uint64, int64) {
	group := nodeIdx
	if rng.Intn(100) < w.SharedPct {
		group = w.Layout.Nodes // the shared group
	}
	return w.Layout.RowAddr(group, rng.Intn(w.Layout.TotalRows()))
}

// PointUpdateTxn runs the fig. 11 transaction on node: 10 point updates.
func (w *SharedSysbench) PointUpdateTxn(clk *simclock.Clock, node SharedNode, nodeIdx int, rng *rand.Rand) error {
	w.CPUNs += chargeCPU(clk, BeginCommitCPU)
	for i := 0; i < 10; i++ {
		pid, off := w.pickRow(nodeIdx, rng)
		w.CPUNs += chargeCPU(clk, UpdateCPU)
		err := node.ReadModifyWrite(clk, pid, off, 64, func(b []byte) {
			b[0]++
			b[8] = byte(i)
		})
		if err != nil {
			return err
		}
		w.Queries++
	}
	w.Txns++
	return nil
}

// ReadWriteTxn runs the sysbench read-write mix through the sharing layer:
// 10 point selects, 4 range reads (100 consecutive rows), 2 updates, 1
// delete + 1 insert modelled as two row rewrites.
func (w *SharedSysbench) ReadWriteTxn(clk *simclock.Clock, node SharedNode, nodeIdx int, rng *rand.Rand) error {
	w.CPUNs += chargeCPU(clk, BeginCommitCPU)
	buf := make([]byte, RowSize)
	for i := 0; i < 10; i++ {
		pid, off := w.pickRow(nodeIdx, rng)
		w.CPUNs += chargeCPU(clk, PointSelectCPU)
		if err := node.Read(clk, pid, off, buf); err != nil {
			return err
		}
		w.Queries++
	}
	for i := 0; i < 4; i++ {
		group := nodeIdx
		if rng.Intn(100) < w.SharedPct {
			group = w.Layout.Nodes
		}
		start := rng.Intn(w.Layout.TotalRows() - RangeLen)
		w.CPUNs += chargeCPU(clk, RangeSelectCPU)
		// 100 consecutive rows: sequential slots across 1-2 pages.
		row := start
		for row < start+RangeLen {
			pid, off := w.Layout.RowAddr(group, row)
			rowsHere := RowsPerPage - row%RowsPerPage
			if row+rowsHere > start+RangeLen {
				rowsHere = start + RangeLen - row
			}
			span := make([]byte, rowsHere*RowSize)
			if err := node.Read(clk, pid, off, span); err != nil {
				return err
			}
			row += rowsHere
		}
		w.Queries++
	}
	for i := 0; i < 4; i++ { // 2 updates + delete/insert pair as rewrites
		pid, off := w.pickRow(nodeIdx, rng)
		w.CPUNs += chargeCPU(clk, UpdateCPU)
		err := node.ReadModifyWrite(clk, pid, off, 64, func(b []byte) { b[1]++ })
		if err != nil {
			return err
		}
		w.Queries++
	}
	w.Txns++
	return nil
}
