package workload

import (
	"fmt"
	"math/rand"

	"polarcxlmem/internal/btree"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/txn"
)

// RowSize is the sysbench sbtest row payload: k (8 B int) + c (120 B) +
// pad (60 B).
const RowSize = 188

// Sysbench drives a transaction engine with the standard oltp_* workloads.
type Sysbench struct {
	eng    *txn.Engine
	tables []*btree.Tree
	rows   int64

	// Stats accumulate across ops.
	Queries int64
	Txns    int64
	CPUNs   int64
}

// NewSysbench creates ntables sbtest tables with rows rows each and loads
// them (bulk transactions + a final checkpoint, like sysbench prepare).
// seed fixes the generated row payloads, so sweep runs and property tests
// can vary the loaded dataset deterministically.
func NewSysbench(clk *simclock.Clock, eng *txn.Engine, ntables int, rows int64, seed int64) (*Sysbench, error) {
	s := &Sysbench{eng: eng, rows: rows}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ntables; i++ {
		tr, err := eng.CreateTable(clk, fmt.Sprintf("sbtest%d", i+1))
		if err != nil {
			return nil, err
		}
		s.tables = append(s.tables, tr)
		var tx *txn.Txn
		for id := int64(1); id <= rows; id++ {
			if tx == nil {
				tx = eng.Begin(clk)
			}
			if err := tx.Insert(tr, id, row(rng, id)); err != nil {
				return nil, fmt.Errorf("sysbench load table %d row %d: %w", i, id, err)
			}
			if id%1000 == 0 {
				if err := tx.Commit(); err != nil {
					return nil, err
				}
				tx = nil
			}
		}
		if tx != nil {
			if err := tx.Commit(); err != nil {
				return nil, err
			}
		}
	}
	if err := eng.Checkpoint(clk); err != nil {
		return nil, err
	}
	return s, nil
}

// AttachSysbench reopens the sbtest tables on a recovered engine (the
// post-crash resume path): no loading, the data is whatever recovery left.
func AttachSysbench(clk *simclock.Clock, eng *txn.Engine, ntables int, rows int64) (*Sysbench, error) {
	s := &Sysbench{eng: eng, rows: rows}
	for i := 0; i < ntables; i++ {
		tr, err := eng.Table(clk, fmt.Sprintf("sbtest%d", i+1))
		if err != nil {
			return nil, err
		}
		s.tables = append(s.tables, tr)
	}
	return s, nil
}

// row builds one sbtest row payload.
func row(rng *rand.Rand, id int64) []byte {
	v := make([]byte, RowSize)
	for i := 0; i < 8; i++ {
		v[i] = byte(uint64(id*2654435761) >> (8 * i)) // the k column
	}
	rng.Read(v[8:])
	return v
}

// Rows reports rows per table.
func (s *Sysbench) Rows() int64 { return s.rows }

// Tables reports the table handles (recovery verification).
func (s *Sysbench) Tables() []*btree.Tree { return s.tables }

func (s *Sysbench) pick(rng *rand.Rand) (*btree.Tree, int64) {
	return s.tables[rng.Intn(len(s.tables))], 1 + rng.Int63n(s.rows)
}

// PointSelect runs one point-select query (autocommit read).
func (s *Sysbench) PointSelect(clk *simclock.Clock, rng *rand.Rand) error {
	tr, id := s.pick(rng)
	s.CPUNs += chargeCPU(clk, PointSelectCPU)
	_, err := tr.Get(clk, id)
	s.Queries++
	return err
}

// RangeSelect runs one 100-row range query.
func (s *Sysbench) RangeSelect(clk *simclock.Clock, rng *rand.Rand) error {
	tr, id := s.pick(rng)
	s.CPUNs += chargeCPU(clk, RangeSelectCPU)
	_, err := tr.Scan(clk, id, RangeLen)
	s.Queries++
	return err
}

// ReadOnlyTxn runs a sysbench oltp_read_only transaction: 10 point selects
// + 4 range queries.
func (s *Sysbench) ReadOnlyTxn(clk *simclock.Clock, rng *rand.Rand) error {
	for i := 0; i < 10; i++ {
		if err := s.PointSelect(clk, rng); err != nil {
			return err
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.RangeSelect(clk, rng); err != nil {
			return err
		}
	}
	s.Txns++
	return nil
}

// ReadWriteTxn runs a sysbench oltp_read_write transaction: 10 point
// selects, 4 range queries, 1 indexed update, 1 non-indexed update, 1
// delete + 1 insert of the same id, then commit.
func (s *Sysbench) ReadWriteTxn(clk *simclock.Clock, rng *rand.Rand) error {
	tx := s.eng.Begin(clk)
	s.CPUNs += chargeCPU(clk, BeginCommitCPU)
	for i := 0; i < 10; i++ {
		tr, id := s.pick(rng)
		s.CPUNs += chargeCPU(clk, PointSelectCPU)
		if _, err := tx.Get(tr, id); err != nil {
			return err
		}
		s.Queries++
	}
	for i := 0; i < 4; i++ {
		tr, id := s.pick(rng)
		s.CPUNs += chargeCPU(clk, RangeSelectCPU)
		if _, err := tx.Scan(tr, id, RangeLen); err != nil {
			return err
		}
		s.Queries++
	}
	if err := s.updateOne(clk, rng, tx); err != nil {
		return err
	}
	if err := s.updateOne(clk, rng, tx); err != nil {
		return err
	}
	// delete_insert: remove a row and reinsert it under the same id.
	tr, id := s.pick(rng)
	s.CPUNs += chargeCPU(clk, DeleteCPU)
	if err := tx.Delete(tr, id); err != nil {
		return err
	}
	s.Queries++
	s.CPUNs += chargeCPU(clk, InsertCPU)
	if err := tx.Insert(tr, id, row(rng, id)); err != nil {
		return err
	}
	s.Queries++
	if err := tx.Commit(); err != nil {
		return err
	}
	s.Txns++
	return nil
}

func (s *Sysbench) updateOne(clk *simclock.Clock, rng *rand.Rand, tx *txn.Txn) error {
	tr, id := s.pick(rng)
	s.CPUNs += chargeCPU(clk, UpdateCPU)
	if err := tx.Update(tr, id, row(rng, id)); err != nil {
		return err
	}
	s.Queries++
	return nil
}

// WriteOnlyTxn runs a sysbench oltp_write_only transaction: 2 updates, 1
// delete + 1 insert, commit.
func (s *Sysbench) WriteOnlyTxn(clk *simclock.Clock, rng *rand.Rand) error {
	tx := s.eng.Begin(clk)
	s.CPUNs += chargeCPU(clk, BeginCommitCPU)
	for i := 0; i < 2; i++ {
		if err := s.updateOne(clk, rng, tx); err != nil {
			return err
		}
	}
	tr, id := s.pick(rng)
	s.CPUNs += chargeCPU(clk, DeleteCPU)
	if err := tx.Delete(tr, id); err != nil {
		return err
	}
	s.Queries++
	s.CPUNs += chargeCPU(clk, InsertCPU)
	if err := tx.Insert(tr, id, row(rng, id)); err != nil {
		return err
	}
	s.Queries++
	if err := tx.Commit(); err != nil {
		return err
	}
	s.Txns++
	return nil
}

// PointUpdateTxn runs the fig. 11 transaction: 10 point updates, commit.
func (s *Sysbench) PointUpdateTxn(clk *simclock.Clock, rng *rand.Rand) error {
	tx := s.eng.Begin(clk)
	s.CPUNs += chargeCPU(clk, BeginCommitCPU)
	for i := 0; i < 10; i++ {
		if err := s.updateOne(clk, rng, tx); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	s.Txns++
	return nil
}
