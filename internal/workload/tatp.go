package workload

import (
	"fmt"
	"math/rand"

	"polarcxlmem/internal/page"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
)

// TATPConfig scales the TATP schema. TATP is perfectly partitionable: each
// node owns its subscriber range and no transaction crosses nodes (§4.4:
// "In TATP, there is no data sharing at all").
type TATPConfig struct {
	Nodes       int
	Subscribers int // per node
}

// DefaultTATPConfig returns a simulation-scaled configuration.
func DefaultTATPConfig(nodes int) TATPConfig {
	return TATPConfig{Nodes: nodes, Subscribers: 20000}
}

// TATP lays out subscriber/access-info/special-facility/call-forwarding
// ranges per node and runs the standard 80/20 read/write mix:
//
//	GET_SUBSCRIBER_DATA 35%, GET_NEW_DESTINATION 10%, GET_ACCESS_DATA 35%,
//	UPDATE_SUBSCRIBER_DATA 2%, UPDATE_LOCATION 14%,
//	INSERT_CALL_FORWARDING 2%, DELETE_CALL_FORWARDING 2%.
type TATP struct {
	cfg     TATPConfig
	base    uint64
	perNode int // pages per node
	subPg   int
	aiPg    int
	sfPg    int
	cfPg    int

	Queries int64
	Txns    int64
	CPUNs   int64
}

// NewTATP seeds storage and returns the workload.
func NewTATP(clk *simclock.Clock, store *storage.Store, cfg TATPConfig) (*TATP, error) {
	t := &TATP{cfg: cfg}
	t.subPg = pagesFor(cfg.Subscribers)
	t.aiPg = pagesFor(cfg.Subscribers * 2) // ~2.5 access-info rows/sub
	t.sfPg = pagesFor(cfg.Subscribers * 2)
	t.cfPg = pagesFor(cfg.Subscribers)
	t.perNode = t.subPg + t.aiPg + t.sfPg + t.cfPg
	img := make([]byte, page.Size)
	for i := 0; i < cfg.Nodes*t.perNode; i++ {
		id := store.AllocPageID()
		if i == 0 {
			t.base = id
		}
		if err := store.WritePage(clk, id, img); err != nil {
			return nil, fmt.Errorf("tatp: seeding: %w", err)
		}
	}
	return t, nil
}

func (t *TATP) addr(node, table, row, rows, basePg, rangePgs int) (uint64, int64) {
	pg := (row / RowsPerPage) % rangePgs
	slot := row % RowsPerPage
	return t.base + uint64(node*t.perNode+basePg+pg), int64(page.HeaderSize + slot*RowSize)
}

func (t *TATP) subscriberAddr(node, s int) (uint64, int64) {
	return t.addr(node, 0, s, t.cfg.Subscribers, 0, t.subPg)
}
func (t *TATP) accessInfoAddr(node, s int) (uint64, int64) {
	return t.addr(node, 1, s, t.cfg.Subscribers*2, t.subPg, t.aiPg)
}
func (t *TATP) specialFacilityAddr(node, s int) (uint64, int64) {
	return t.addr(node, 2, s, t.cfg.Subscribers*2, t.subPg+t.aiPg, t.sfPg)
}
func (t *TATP) callFwdAddr(node, s int) (uint64, int64) {
	return t.addr(node, 3, s, t.cfg.Subscribers, t.subPg+t.aiPg+t.sfPg, t.cfPg)
}

// Txn runs one transaction from the standard mix for node's subscriber
// range.
func (t *TATP) Txn(clk *simclock.Clock, node SharedNode, nodeIdx int, rng *rand.Rand) error {
	s := rng.Intn(t.cfg.Subscribers)
	buf := make([]byte, RowSize)
	read := func(pid uint64, off int64, n int) error {
		t.CPUNs += chargeCPU(clk, PointSelectCPU)
		t.Queries++
		return node.Read(clk, pid, off, buf[:n])
	}
	write := func(pid uint64, off int64, n int) error {
		t.CPUNs += chargeCPU(clk, UpdateCPU)
		t.Queries++
		return node.ReadModifyWrite(clk, pid, off, n, func(b []byte) { b[0]++ })
	}
	var err error
	switch p := rng.Intn(100); {
	case p < 35: // GET_SUBSCRIBER_DATA
		pid, off := t.subscriberAddr(nodeIdx, s)
		err = read(pid, off, RowSize)
	case p < 45: // GET_NEW_DESTINATION: special facility + call forwarding
		pid, off := t.specialFacilityAddr(nodeIdx, s)
		if err = read(pid, off, 40); err == nil {
			pid, off = t.callFwdAddr(nodeIdx, s)
			err = read(pid, off, 40)
		}
	case p < 80: // GET_ACCESS_DATA
		pid, off := t.accessInfoAddr(nodeIdx, s)
		err = read(pid, off, 48)
	case p < 82: // UPDATE_SUBSCRIBER_DATA: subscriber bit + special facility
		pid, off := t.subscriberAddr(nodeIdx, s)
		if err = write(pid, off, 8); err == nil {
			pid, off = t.specialFacilityAddr(nodeIdx, s)
			err = write(pid, off, 8)
		}
	case p < 96: // UPDATE_LOCATION
		pid, off := t.subscriberAddr(nodeIdx, s)
		err = write(pid, off, 16)
	case p < 98: // INSERT_CALL_FORWARDING: read special facility, write cf
		pid, off := t.specialFacilityAddr(nodeIdx, s)
		if err = read(pid, off, 40); err == nil {
			pid, off = t.callFwdAddr(nodeIdx, s)
			t.CPUNs += chargeCPU(clk, InsertCPU)
			t.Queries++
			err = node.Write(clk, pid, off, buf[:40])
		}
	default: // DELETE_CALL_FORWARDING
		pid, off := t.callFwdAddr(nodeIdx, s)
		err = write(pid, off, 8)
	}
	if err != nil {
		return err
	}
	t.Txns++
	return nil
}
