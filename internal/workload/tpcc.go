package workload

import (
	"fmt"
	"math/rand"

	"polarcxlmem/internal/page"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
)

// TPCCConfig scales the TPC-C schema. One warehouse per node, as in the
// paper's 15-node run; cross-warehouse traffic follows the standard: 1% of
// new-order lines and 15% of payments touch a remote warehouse, making
// roughly 10% of transactions cross-warehouse overall.
type TPCCConfig struct {
	Warehouses int // = node count
	Districts  int // per warehouse (10)
	Customers  int // per warehouse
	Stock      int // per warehouse
	Items      int // global, read-only
	OrderPages int // per-warehouse insert ring
}

// DefaultTPCCConfig returns a simulation-scaled configuration.
func DefaultTPCCConfig(warehouses int) TPCCConfig {
	return TPCCConfig{
		Warehouses: warehouses,
		Districts:  10,
		Customers:  3000,
		Stock:      10000,
		Items:      10000,
		OrderPages: 64,
	}
}

// TPCC lays the schema out over shared pages and runs the standard mix.
type TPCC struct {
	cfg TPCCConfig

	// page-range bases (page ids)
	itemBase  uint64 // shared read-only group
	whBase    uint64 // per-warehouse ranges follow
	perWH     int    // pages per warehouse
	custPages int
	stockPage int

	// per-node insert cursors (orders/history ring)
	cursors []int

	NewOrders int64
	Payments  int64
	Others    int64
	CPUNs     int64
	Remote    int64 // cross-warehouse accesses
}

func pagesFor(rows int) int { return (rows + RowsPerPage - 1) / RowsPerPage }

// NewTPCC seeds storage with the full schema and returns the workload.
func NewTPCC(clk *simclock.Clock, store *storage.Store, cfg TPCCConfig) (*TPCC, error) {
	t := &TPCC{cfg: cfg, cursors: make([]int, cfg.Warehouses)}
	t.custPages = pagesFor(cfg.Customers)
	t.stockPage = pagesFor(cfg.Stock)
	// Per-warehouse layout: [warehouse 1pg][district 1pg][customer][stock][orders ring][history 8pg]
	t.perWH = 1 + 1 + t.custPages + t.stockPage + cfg.OrderPages + 8

	seed := func(n int) (uint64, error) {
		var first uint64
		img := make([]byte, page.Size)
		for i := 0; i < n; i++ {
			id := store.AllocPageID()
			if i == 0 {
				first = id
			}
			if err := store.WritePage(clk, id, img); err != nil {
				return 0, fmt.Errorf("tpcc: seeding: %w", err)
			}
		}
		return first, nil
	}
	var err error
	if t.itemBase, err = seed(pagesFor(cfg.Items)); err != nil {
		return nil, err
	}
	if t.whBase, err = seed(cfg.Warehouses * t.perWH); err != nil {
		return nil, err
	}
	return t, nil
}

// row addressing within a warehouse
func (t *TPCC) whPage(wh, off int) uint64 { return t.whBase + uint64(wh*t.perWH+off) }

func rowAddr(base uint64, pagesInRange, row int) (uint64, int64) {
	pg := (row / RowsPerPage) % pagesInRange
	slot := row % RowsPerPage
	return base + uint64(pg), int64(page.HeaderSize + slot*RowSize)
}

func (t *TPCC) warehouseAddr(wh int) (uint64, int64) { return t.whPage(wh, 0), page.HeaderSize }
func (t *TPCC) districtAddr(wh, d int) (uint64, int64) {
	return t.whPage(wh, 1), int64(page.HeaderSize + d*RowSize)
}
func (t *TPCC) customerAddr(wh, c int) (uint64, int64) {
	pg, off := rowAddr(0, t.custPages, c)
	return t.whPage(wh, 2+int(pg)), off
}
func (t *TPCC) stockAddr(wh, s int) (uint64, int64) {
	pg, off := rowAddr(0, t.stockPage, s)
	return t.whPage(wh, 2+t.custPages+int(pg)), off
}
func (t *TPCC) orderAddr(wh, cursor int) (uint64, int64) {
	pg, off := rowAddr(0, t.cfg.OrderPages, cursor)
	return t.whPage(wh, 2+t.custPages+t.stockPage+int(pg)), off
}
func (t *TPCC) historyAddr(wh, cursor int) (uint64, int64) {
	pg, off := rowAddr(0, 8, cursor)
	return t.whPage(wh, 2+t.custPages+t.stockPage+t.cfg.OrderPages+int(pg)), off
}
func (t *TPCC) itemAddr(i int) (uint64, int64) {
	return rowAddr(t.itemBase, pagesFor(t.cfg.Items), i)
}

// remoteWH picks a warehouse other than home.
func (t *TPCC) remoteWH(home int, rng *rand.Rand) int {
	if t.cfg.Warehouses == 1 {
		return home
	}
	w := rng.Intn(t.cfg.Warehouses - 1)
	if w >= home {
		w++
	}
	return w
}

// NewOrder runs one new-order transaction for the node owning warehouse wh.
func (t *TPCC) NewOrder(clk *simclock.Clock, node SharedNode, wh int, rng *rand.Rand) error {
	buf := make([]byte, 64)
	// Read warehouse tax.
	t.CPUNs += chargeCPU(clk, PointSelectCPU)
	pid, off := t.warehouseAddr(wh)
	if err := node.Read(clk, pid, off, buf); err != nil {
		return err
	}
	// District: read + bump next_o_id.
	t.CPUNs += chargeCPU(clk, UpdateCPU)
	pid, off = t.districtAddr(wh, rng.Intn(t.cfg.Districts))
	if err := node.ReadModifyWrite(clk, pid, off, 16, func(b []byte) { b[0]++ }); err != nil {
		return err
	}
	// Customer read.
	t.CPUNs += chargeCPU(clk, PointSelectCPU)
	pid, off = t.customerAddr(wh, rng.Intn(t.cfg.Customers))
	if err := node.Read(clk, pid, off, buf); err != nil {
		return err
	}
	// 5-15 order lines.
	lines := 5 + rng.Intn(11)
	for i := 0; i < lines; i++ {
		// Item lookup (shared read-only pages).
		t.CPUNs += chargeCPU(clk, PointSelectCPU)
		pid, off = t.itemAddr(rng.Intn(t.cfg.Items))
		if err := node.Read(clk, pid, off, buf); err != nil {
			return err
		}
		// Stock: 1% remote.
		sw := wh
		if rng.Intn(100) == 0 {
			sw = t.remoteWH(wh, rng)
			if sw != wh {
				t.Remote++
			}
		}
		t.CPUNs += chargeCPU(clk, UpdateCPU)
		pid, off = t.stockAddr(sw, rng.Intn(t.cfg.Stock))
		if err := node.ReadModifyWrite(clk, pid, off, 24, func(b []byte) { b[0]-- }); err != nil {
			return err
		}
		// Order-line insert (private ring).
		t.CPUNs += chargeCPU(clk, InsertCPU)
		t.cursors[wh] = (t.cursors[wh] + 1) % (t.cfg.OrderPages * RowsPerPage)
		pid, off = t.orderAddr(wh, t.cursors[wh])
		if err := node.Write(clk, pid, off, buf[:RowSize/4]); err != nil {
			return err
		}
	}
	// Order + new-order inserts.
	for i := 0; i < 2; i++ {
		t.CPUNs += chargeCPU(clk, InsertCPU)
		t.cursors[wh] = (t.cursors[wh] + 1) % (t.cfg.OrderPages * RowsPerPage)
		pid, off = t.orderAddr(wh, t.cursors[wh])
		if err := node.Write(clk, pid, off, buf[:32]); err != nil {
			return err
		}
	}
	t.NewOrders++
	return nil
}

// Payment runs one payment transaction (15% remote customer).
func (t *TPCC) Payment(clk *simclock.Clock, node SharedNode, wh int, rng *rand.Rand) error {
	t.CPUNs += chargeCPU(clk, UpdateCPU)
	pid, off := t.warehouseAddr(wh)
	if err := node.ReadModifyWrite(clk, pid, off, 16, func(b []byte) { b[0]++ }); err != nil {
		return err
	}
	t.CPUNs += chargeCPU(clk, UpdateCPU)
	pid, off = t.districtAddr(wh, rng.Intn(t.cfg.Districts))
	if err := node.ReadModifyWrite(clk, pid, off, 16, func(b []byte) { b[1]++ }); err != nil {
		return err
	}
	cw := wh
	if rng.Intn(100) < 15 {
		cw = t.remoteWH(wh, rng)
		if cw != wh {
			t.Remote++
		}
	}
	t.CPUNs += chargeCPU(clk, UpdateCPU)
	pid, off = t.customerAddr(cw, rng.Intn(t.cfg.Customers))
	if err := node.ReadModifyWrite(clk, pid, off, 32, func(b []byte) { b[2]++ }); err != nil {
		return err
	}
	t.CPUNs += chargeCPU(clk, InsertCPU)
	t.cursors[wh] = (t.cursors[wh] + 1) % (8 * RowsPerPage)
	pid, off = t.historyAddr(wh, t.cursors[wh]%(8*RowsPerPage))
	if err := node.Write(clk, pid, off, make([]byte, 46)); err != nil {
		return err
	}
	t.Payments++
	return nil
}

// OrderStatus reads a customer and their latest order lines.
func (t *TPCC) OrderStatus(clk *simclock.Clock, node SharedNode, wh int, rng *rand.Rand) error {
	buf := make([]byte, RowSize)
	t.CPUNs += chargeCPU(clk, PointSelectCPU)
	pid, off := t.customerAddr(wh, rng.Intn(t.cfg.Customers))
	if err := node.Read(clk, pid, off, buf); err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		t.CPUNs += chargeCPU(clk, PointSelectCPU)
		pid, off = t.orderAddr(wh, rng.Intn(t.cfg.OrderPages*RowsPerPage))
		if err := node.Read(clk, pid, off, buf[:32]); err != nil {
			return err
		}
	}
	t.Others++
	return nil
}

// Delivery processes one order per district.
func (t *TPCC) Delivery(clk *simclock.Clock, node SharedNode, wh int, rng *rand.Rand) error {
	for d := 0; d < t.cfg.Districts; d++ {
		t.CPUNs += chargeCPU(clk, UpdateCPU)
		pid, off := t.orderAddr(wh, rng.Intn(t.cfg.OrderPages*RowsPerPage))
		if err := node.ReadModifyWrite(clk, pid, off, 16, func(b []byte) { b[3] = 1 }); err != nil {
			return err
		}
		t.CPUNs += chargeCPU(clk, UpdateCPU)
		pid, off = t.customerAddr(wh, rng.Intn(t.cfg.Customers))
		if err := node.ReadModifyWrite(clk, pid, off, 16, func(b []byte) { b[4]++ }); err != nil {
			return err
		}
	}
	t.Others++
	return nil
}

// StockLevel reads the district and recent stock rows.
func (t *TPCC) StockLevel(clk *simclock.Clock, node SharedNode, wh int, rng *rand.Rand) error {
	buf := make([]byte, 64)
	t.CPUNs += chargeCPU(clk, PointSelectCPU)
	pid, off := t.districtAddr(wh, rng.Intn(t.cfg.Districts))
	if err := node.Read(clk, pid, off, buf); err != nil {
		return err
	}
	for i := 0; i < 20; i++ {
		t.CPUNs += chargeCPU(clk, PointSelectCPU)
		pid, off = t.stockAddr(wh, rng.Intn(t.cfg.Stock))
		if err := node.Read(clk, pid, off, buf[:24]); err != nil {
			return err
		}
	}
	t.Others++
	return nil
}

// Txn runs one transaction from the standard mix (45/43/4/4/4) on wh's
// node.
func (t *TPCC) Txn(clk *simclock.Clock, node SharedNode, wh int, rng *rand.Rand) error {
	switch p := rng.Intn(100); {
	case p < 45:
		return t.NewOrder(clk, node, wh, rng)
	case p < 88:
		return t.Payment(clk, node, wh, rng)
	case p < 92:
		return t.OrderStatus(clk, node, wh, rng)
	case p < 96:
		return t.Delivery(clk, node, wh, rng)
	default:
		return t.StockLevel(clk, node, wh, rng)
	}
}
