package workload

import (
	"fmt"
	"math/rand"
	"testing"

	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/rdma"
	"polarcxlmem/internal/sharing"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
	"polarcxlmem/internal/txn"
	"polarcxlmem/internal/wal"
)

func newEngine(t *testing.T) (*txn.Engine, *simclock.Clock) {
	t.Helper()
	store := storage.New(storage.Config{})
	pool := buffer.NewDRAMPool(store, 4096, cxl.DRAMProfile())
	clk := simclock.New()
	e, err := txn.Bootstrap(clk, pool, wal.Attach(wal.NewStore(0, 0)), store)
	if err != nil {
		t.Fatal(err)
	}
	return e, clk
}

func TestSysbenchLoadAndMixes(t *testing.T) {
	e, clk := newEngine(t)
	s, err := NewSysbench(clk, e, 2, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 500 || len(s.Tables()) != 2 {
		t.Fatal("load shape wrong")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if err := s.PointSelect(clk, rng); err != nil {
			t.Fatalf("point select %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.RangeSelect(clk, rng); err != nil {
			t.Fatalf("range select %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.ReadWriteTxn(clk, rng); err != nil {
			t.Fatalf("read-write %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.WriteOnlyTxn(clk, rng); err != nil {
			t.Fatalf("write-only %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.PointUpdateTxn(clk, rng); err != nil {
			t.Fatalf("point-update %d: %v", i, err)
		}
	}
	if err := s.ReadOnlyTxn(clk, rng); err != nil {
		t.Fatal(err)
	}
	if s.Queries == 0 || s.Txns == 0 || s.CPUNs == 0 {
		t.Fatalf("stats not accumulated: %+v", s)
	}
	// Every table still structurally valid after the churn.
	for _, tr := range s.Tables() {
		if err := tr.Validate(clk); err != nil {
			t.Fatal(err)
		}
	}
	// Row count conserved: read-write and write-only delete+insert the same
	// id, so each table still has exactly 500 rows.
	for i, tr := range s.Tables() {
		n, err := tr.Count(clk)
		if err != nil || n != 500 {
			t.Fatalf("table %d count = %d, %v", i, n, err)
		}
	}
}

func TestSysbenchCPUAccounting(t *testing.T) {
	e, clk := newEngine(t)
	s, err := NewSysbench(clk, e, 1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	before := clk.Now()
	if err := s.PointSelect(clk, rng); err != nil {
		t.Fatal(err)
	}
	if clk.Now()-before < PointSelectCPU {
		t.Fatal("point select undercharged CPU")
	}
}

// sharedRig builds a CXL sharing deployment for workload tests.
func sharedRig(t *testing.T, store *storage.Store, dbpPages, nnodes int) []*sharing.Node {
	t.Helper()
	clk := simclock.New()
	sw := cxl.NewSwitch(cxl.Config{PoolBytes: int64(dbpPages)*page.Size + int64(nnodes)*(1<<16) + 4096})
	fhost := sw.AttachHost("fusion")
	dbp, err := fhost.Allocate(clk, "dbp", int64(dbpPages)*page.Size)
	if err != nil {
		t.Fatal(err)
	}
	fusion := sharing.NewFusion(fhost, dbp, store)
	var nodes []*sharing.Node
	for i := 0; i < nnodes; i++ {
		name := fmt.Sprintf("n%d", i)
		h := sw.AttachHost(name)
		flags, err := h.Allocate(clk, name+"-flags", 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, sharing.NewNode(name, fusion, h.NewCache(name, 4<<20), flags))
	}
	return nodes
}

func TestSharedSysbenchMix(t *testing.T) {
	store := storage.New(storage.Config{})
	clk := simclock.New()
	layout, err := NewLayout(clk, store, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	nodes := sharedRig(t, store, 64, 2)
	w := &SharedSysbench{Layout: layout, SharedPct: 50}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		for n, node := range nodes {
			if err := w.PointUpdateTxn(clk, node, n, rng); err != nil {
				t.Fatalf("point-update: %v", err)
			}
			if err := w.ReadWriteTxn(clk, node, n, rng); err != nil {
				t.Fatalf("read-write: %v", err)
			}
		}
	}
	if w.Txns != 40 || w.Queries == 0 {
		t.Fatalf("stats %+v", w)
	}
}

func TestSharedPctRouting(t *testing.T) {
	store := storage.New(storage.Config{})
	clk := simclock.New()
	layout, err := NewLayout(clk, store, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// All rows at 0% sharing must be in the node's own group; at 100% all
	// in the shared group.
	w0 := &SharedSysbench{Layout: layout, SharedPct: 0}
	w100 := &SharedSysbench{Layout: layout, SharedPct: 100}
	rng := rand.New(rand.NewSource(6))
	sharedLo := layout.GroupPage(2, 0)
	for i := 0; i < 200; i++ {
		pid, _ := w0.pickRowForTest(1, rng)
		if pid >= sharedLo {
			t.Fatal("0% sharing hit the shared group")
		}
		pid, _ = w100.pickRowForTest(1, rng)
		if pid < sharedLo {
			t.Fatal("100% sharing hit a private group")
		}
	}
}

func TestTPCCMixAndRemoteRate(t *testing.T) {
	store := storage.New(storage.Config{})
	clk := simclock.New()
	cfg := TPCCConfig{Warehouses: 4, Districts: 10, Customers: 300, Stock: 1000, Items: 1000, OrderPages: 8}
	tp, err := NewTPCC(clk, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := sharedRig(t, store, 512, 4)
	rng := rand.New(rand.NewSource(7))
	const txns = 300
	for i := 0; i < txns; i++ {
		wh := i % 4
		if err := tp.Txn(clk, nodes[wh], wh, rng); err != nil {
			t.Fatalf("tpcc txn %d: %v", i, err)
		}
	}
	total := tp.NewOrders + tp.Payments + tp.Others
	if total != txns {
		t.Fatalf("txn accounting: %d", total)
	}
	// Mix shape: new-order ~45%, payment ~43%.
	if tp.NewOrders < txns*30/100 || tp.NewOrders > txns*60/100 {
		t.Fatalf("new-order share off: %d/%d", tp.NewOrders, txns)
	}
	if tp.Remote == 0 {
		t.Fatal("no cross-warehouse traffic in 300 txns")
	}
	if tp.CPUNs == 0 {
		t.Fatal("no CPU accounted")
	}
}

func TestTATPMix(t *testing.T) {
	store := storage.New(storage.Config{})
	clk := simclock.New()
	cfg := TATPConfig{Nodes: 2, Subscribers: 500}
	tp, err := NewTATP(clk, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := sharedRig(t, store, 512, 2)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		n := i % 2
		if err := tp.Txn(clk, nodes[n], n, rng); err != nil {
			t.Fatalf("tatp txn %d: %v", i, err)
		}
	}
	if tp.Txns != 200 || tp.Queries < 200 {
		t.Fatalf("stats %+v", tp)
	}
}

func TestTATPWorksOnRDMANodes(t *testing.T) {
	// The same workload must run over the RDMA-MP baseline node type.
	store := storage.New(storage.Config{})
	clk := simclock.New()
	tp, err := NewTATP(clk, store, TATPConfig{Nodes: 1, Subscribers: 200})
	if err != nil {
		t.Fatal(err)
	}
	fusion := sharing.NewRDMAFusion(512, store)
	node := sharing.NewRDMANode("r0", fusion, rdma.NewNIC("r0", 0, 0), 64)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if err := tp.Txn(clk, node, 0, rng); err != nil {
			t.Fatalf("tatp over rdma txn %d: %v", i, err)
		}
	}
}

func TestRowsPerPageSane(t *testing.T) {
	if RowsPerPage < 50 || RowsPerPage*RowSize > page.Size {
		t.Fatalf("RowsPerPage = %d", RowsPerPage)
	}
	if pagesFor(0) != 0 || pagesFor(1) != 1 || pagesFor(RowsPerPage+1) != 2 {
		t.Fatal("pagesFor wrong")
	}
}

func TestTPCCStockCoherentAcrossNodes(t *testing.T) {
	// Functional cross-warehouse coherence: every stock decrement performed
	// through the sharing protocol must land exactly once, including the 1%
	// remote-warehouse lines that touch another node's pages.
	store := storage.New(storage.Config{})
	clk := simclock.New()
	cfg := TPCCConfig{Warehouses: 3, Districts: 10, Customers: 100, Stock: 50, Items: 100, OrderPages: 8}
	tp, err := NewTPCC(clk, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := sharedRig(t, store, 256, 3)
	rng := rand.New(rand.NewSource(77))
	const orders = 60
	for i := 0; i < orders; i++ {
		wh := i % 3
		if err := tp.NewOrder(clk, nodes[wh], wh, rng); err != nil {
			t.Fatalf("new-order %d: %v", i, err)
		}
	}
	if tp.Remote == 0 {
		t.Skip("no remote stock lines drawn with this seed; rerun with more orders")
	}
	// Each stock row started at byte 0 and is decremented once per order
	// line; total decrements across ALL warehouses == total order lines.
	var decrements int64
	buf := make([]byte, 1)
	for wh := 0; wh < 3; wh++ {
		for s := 0; s < cfg.Stock; s++ {
			pid, off := tp.stockAddr(wh, s)
			if err := nodes[0].Read(clk, pid, off, buf); err != nil {
				t.Fatal(err)
			}
			decrements += int64(256-int(buf[0])) % 256
		}
	}
	// Order lines per new-order: 5-15; we don't track the exact count, but
	// every line decremented exactly one stock byte. Recompute from pages vs
	// a re-derivation is impossible without double-counting rows hit twice,
	// so assert bounds: between 5*orders and 15*orders AND congruent with
	// the orders actually executed.
	if decrements < 5*orders || decrements > 15*orders {
		t.Fatalf("total stock decrements %d outside [%d,%d]", decrements, 5*orders, 15*orders)
	}
}
