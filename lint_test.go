package polarcxlmem

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoDeadDiscards is the unused-symbol lint: it walks every .go file in
// the repo and flags the two discard idioms that exist only to hide dead
// code from the compiler:
//
//   - `var _ = expr` with no type — a package-level (or local) value
//     evaluated and thrown away. The TYPED form `var _ Iface = expr` is a
//     compile-time interface assertion and stays legal.
//   - a bare `_ = ident` statement discarding a plain identifier or
//     selector (e.g. `_ = cpuNs`, `_ = simclock.Second`) in non-test
//     files. Discarding a call's result can be a legitimate "error
//     intentionally ignored"; discarding a NAME is always a vestige of
//     deleted code. Test files get latitude here (compile-only probes),
//     non-test code does not.
//
// Several of these had accumulated in the bench package, masking real
// measurement bugs (a captured-then-discarded CPU counter). This test keeps
// them from coming back.
func TestNoDeadDiscards(t *testing.T) {
	fset := token.NewFileSet()
	var bad []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		isTest := strings.HasSuffix(path, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GenDecl:
				if node.Tok != token.VAR {
					return true
				}
				for _, spec := range node.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || vs.Type != nil || len(vs.Values) == 0 {
						continue // typed `var _ Iface = x` is an interface assertion
					}
					for _, id := range vs.Names {
						if id.Name == "_" {
							bad = append(bad, fmt.Sprintf("%s: untyped `var _ = ...` discard", fset.Position(id.Pos())))
						}
					}
				}
			case *ast.AssignStmt:
				if isTest || node.Tok != token.ASSIGN || len(node.Lhs) != 1 || len(node.Rhs) != 1 {
					return true
				}
				lhs, ok := node.Lhs[0].(*ast.Ident)
				if !ok || lhs.Name != "_" {
					return true
				}
				switch node.Rhs[0].(type) {
				case *ast.Ident, *ast.SelectorExpr:
					bad = append(bad, fmt.Sprintf("%s: dead `_ = name` discard", fset.Position(node.Pos())))
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bad {
		t.Error(b)
	}
	if len(bad) > 0 {
		t.Fatalf("%d dead discard(s); delete the vestige (or, for a call whose error is deliberately ignored, keep the call expression)", len(bad))
	}
}
