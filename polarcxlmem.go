// Package polarcxlmem is the public facade of the PolarCXLMem
// reproduction: a CXL-switch-based disaggregated memory system for
// cloud-native databases, after "Unlocking the Potential of CXL for
// Disaggregated Memory in Cloud-Native Databases" (SIGMOD 2025).
//
// The package wires the internal substrates into three deployment shapes:
//
//   - Cluster: a CXL switch + memory box + shared storage + WAL — the
//     disaggregated substrate every instance plugs into.
//   - Instance: one database engine whose ENTIRE buffer pool (pages and
//     metadata) lives in CXL memory (§3.1). Crash it and recover instantly
//     with PolarRecv (§3.2).
//   - SharingCluster: a multi-primary deployment over a buffer-fusion
//     server with the software cache-coherency protocol (§3.3).
//
// Everything runs in virtual time: operations take simulated nanoseconds on
// calibrated device models, so behaviour — including crash recovery and
// cache-coherency races — is deterministic and testable. See DESIGN.md for
// the substitution argument and EXPERIMENTS.md for paper-vs-measured
// results.
//
// # Quick start
//
//	cluster, _ := polarcxlmem.NewCluster(polarcxlmem.ClusterConfig{PoolPages: 1024})
//	inst, _ := cluster.StartInstance("db0", 512)
//	tbl, _ := inst.CreateTable("accounts")
//	tx := inst.Begin()
//	tx.Insert(tbl, 1, []byte("alice: 100"))
//	tx.Commit()
//	inst.Crash()                       // host dies; CXL memory survives
//	inst2, rec, _ := cluster.Recover("db0")
//	fmt.Println(rec.PagesTrusted)      // buffer pool reused in place
package polarcxlmem

import (
	"fmt"

	"polarcxlmem/internal/btree"
	"polarcxlmem/internal/core"
	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/recovery"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
	"polarcxlmem/internal/txn"
	"polarcxlmem/internal/wal"
)

// ClusterConfig sizes a CXL cluster.
type ClusterConfig struct {
	// PoolPages is each CXL memory box's capacity in 16 KB page blocks.
	PoolPages int64
	// Pools is the number of independent switch+memory-box domains in the
	// rack (the paper's Figure 5 deployment has two). Default 1. Instances
	// are placed on the pool with the most free capacity.
	Pools int
	// StorageConfig overrides the shared page-store device model.
	Storage storage.Config
}

// Cluster is a rack of CXL switch domains — each a switch plus its memory
// box — over shared storage and durable logs: the disaggregated substrate.
// It survives any Instance crash.
type Cluster struct {
	switches   []*cxl.Switch
	storageCfg storage.Config
	stores     map[string]*storage.Store // one database volume per instance
	wals       map[string]*wal.Store

	instances map[string]*Instance
	placement map[string]int // instance -> switch index
}

// NewCluster builds the substrate.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 1024
	}
	if cfg.Pools <= 0 {
		cfg.Pools = 1
	}
	c := &Cluster{
		storageCfg: cfg.Storage,
		stores:     make(map[string]*storage.Store),
		wals:       make(map[string]*wal.Store),
		instances:  make(map[string]*Instance),
		placement:  make(map[string]int),
	}
	for i := 0; i < cfg.Pools; i++ {
		c.switches = append(c.switches,
			cxl.NewSwitch(cxl.Config{PoolBytes: core.RegionSizeFor(cfg.PoolPages) + 4096}))
	}
	return c, nil
}

// place picks the switch domain with the most unallocated memory for a new
// allocation of size bytes, or an error if nothing fits.
func (c *Cluster) place(size int64) (int, error) {
	best, bestFree := -1, int64(-1)
	for i, sw := range c.switches {
		free := sw.Device().Size() - sw.Manager().Allocated()
		if free >= size && free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("polarcxlmem: no pool has %d free bytes (pools: %d)", size, len(c.switches))
	}
	return best, nil
}

// Instance is one database instance running directly on CXL memory.
type Instance struct {
	name    string
	cluster *Cluster
	clk     *simclock.Clock
	pool    *core.CXLPool
	eng     *txn.Engine
	crashed bool
}

// StartInstance boots a fresh instance named name with a buffer pool of
// poolPages CXL blocks.
func (c *Cluster) StartInstance(name string, poolPages int64) (*Instance, error) {
	if _, ok := c.instances[name]; ok {
		return nil, fmt.Errorf("polarcxlmem: instance %q already exists", name)
	}
	clk := simclock.New()
	swIdx, err := c.place(core.RegionSizeFor(poolPages))
	if err != nil {
		return nil, err
	}
	host := c.switches[swIdx].AttachHost(name + "-host")
	region, err := host.Allocate(clk, name, core.RegionSizeFor(poolPages))
	if err != nil {
		return nil, err
	}
	c.placement[name] = swIdx
	cache := host.NewCache(name, 8<<20)
	// Each instance is its own database: its own storage volume and log
	// stream on the shared storage service.
	store := storage.New(c.storageCfg)
	c.stores[name] = store
	pool, err := core.Format(host, region, cache, store)
	if err != nil {
		return nil, err
	}
	ws := wal.NewStore(0, 0)
	c.wals[name] = ws
	eng, err := txn.Bootstrap(clk, pool, wal.Attach(ws), store)
	if err != nil {
		return nil, err
	}
	inst := &Instance{name: name, cluster: c, clk: clk, pool: pool, eng: eng}
	c.instances[name] = inst
	return inst, nil
}

// Recover restarts a crashed instance with PolarRecv: the surviving CXL
// buffer pool is scanned, in-flight pages are rebuilt from redo, everything
// else is reused in place. Returns the new instance and the recovery report.
func (c *Cluster) Recover(name string) (*Instance, *recovery.Result, error) {
	old, ok := c.instances[name]
	if !ok {
		return nil, nil, fmt.Errorf("polarcxlmem: unknown instance %q", name)
	}
	if !old.crashed {
		return nil, nil, fmt.Errorf("polarcxlmem: instance %q has not crashed", name)
	}
	clk := simclock.NewAt(old.clk.Now())
	host := c.switches[c.placement[name]].AttachHost(name + "-host")
	region, err := host.Reattach(clk, name)
	if err != nil {
		return nil, nil, err
	}
	cache := host.NewCache(name, 8<<20)
	pool, eng, res, err := recovery.PolarRecv(clk, host, region, cache, c.wals[name], c.stores[name])
	if err != nil {
		return nil, nil, err
	}
	inst := &Instance{name: name, cluster: c, clk: clk, pool: pool, eng: eng}
	c.instances[name] = inst
	return inst, res, nil
}

// Switch exposes the first CXL switch domain (stats, advanced wiring).
func (c *Cluster) Switch() *cxl.Switch { return c.switches[0] }

// Switches exposes every switch domain in the rack.
func (c *Cluster) Switches() []*cxl.Switch { return c.switches }

// PlacementOf reports which switch domain hosts an instance's buffer pool.
func (c *Cluster) PlacementOf(name string) (int, bool) {
	i, ok := c.placement[name]
	return i, ok
}

// Storage exposes an instance's page-store volume.
func (c *Cluster) Storage(instance string) *storage.Store { return c.stores[instance] }

// Name reports the instance name.
func (i *Instance) Name() string { return i.name }

// Clock exposes the instance's virtual clock.
func (i *Instance) Clock() *simclock.Clock { return i.clk }

// Engine exposes the transaction engine for advanced use.
func (i *Instance) Engine() *txn.Engine { return i.eng }

// Pool exposes the CXL buffer pool (stats, diagnostics).
func (i *Instance) Pool() *core.CXLPool { return i.pool }

func (i *Instance) alive() error {
	if i.crashed {
		return fmt.Errorf("polarcxlmem: instance %q has crashed; call Cluster.Recover", i.name)
	}
	return nil
}

// CreateTable creates a named B+tree table.
func (i *Instance) CreateTable(name string) (*Table, error) {
	if err := i.alive(); err != nil {
		return nil, err
	}
	tr, err := i.eng.CreateTable(i.clk, name)
	if err != nil {
		return nil, err
	}
	return &Table{tree: tr, inst: i}, nil
}

// OpenTable opens an existing table from the durable catalog.
func (i *Instance) OpenTable(name string) (*Table, error) {
	if err := i.alive(); err != nil {
		return nil, err
	}
	tr, err := i.eng.Table(i.clk, name)
	if err != nil {
		return nil, err
	}
	return &Table{tree: tr, inst: i}, nil
}

// Begin starts a transaction.
func (i *Instance) Begin() *Txn {
	return &Txn{tx: i.eng.Begin(i.clk), inst: i}
}

// Checkpoint forces the log and flushes dirty pages to storage.
func (i *Instance) Checkpoint() error {
	if err := i.alive(); err != nil {
		return err
	}
	return i.eng.Checkpoint(i.clk)
}

// Crash simulates a host failure: local DRAM state and the CPU cache are
// lost; the CXL buffer pool, the durable log, and storage survive.
func (i *Instance) Crash() {
	if i.crashed {
		return
	}
	i.crashed = true
	i.pool.Crash()
}

// Table is a handle to a B+tree table.
type Table struct {
	tree *btree.Tree
	inst *Instance
}

// Tree exposes the underlying B+tree.
func (t *Table) Tree() *btree.Tree { return t.tree }

// Txn is a transaction on an instance.
type Txn struct {
	tx   *txn.Txn
	inst *Instance
}

// Insert adds (key, value) to table.
func (t *Txn) Insert(table *Table, key int64, value []byte) error {
	return t.tx.Insert(table.tree, key, value)
}

// Update replaces key's value.
func (t *Txn) Update(table *Table, key int64, value []byte) error {
	return t.tx.Update(table.tree, key, value)
}

// Delete removes key.
func (t *Txn) Delete(table *Table, key int64) error {
	return t.tx.Delete(table.tree, key)
}

// Get reads key's value.
func (t *Txn) Get(table *Table, key int64) ([]byte, error) {
	return t.tx.Get(table.tree, key)
}

// Scan reads up to limit records with key >= from.
func (t *Txn) Scan(table *Table, from int64, limit int) ([]btree.KV, error) {
	return t.tx.Scan(table.tree, from, limit)
}

// Commit makes the transaction durable (group commit).
func (t *Txn) Commit() error { return t.tx.Commit() }

// Rollback undoes the transaction.
func (t *Txn) Rollback() error { return t.tx.Rollback() }

// ErrKeyNotFound is re-exported for callers.
var ErrKeyNotFound = btree.ErrKeyNotFound
