// Package polarcxlmem is the public facade of the PolarCXLMem
// reproduction: a CXL-switch-based disaggregated memory system for
// cloud-native databases, after "Unlocking the Potential of CXL for
// Disaggregated Memory in Cloud-Native Databases" (SIGMOD 2025).
//
// The package wires the internal substrates into three deployment shapes:
//
//   - Cluster: a CXL switch + memory box + shared storage + WAL — the
//     disaggregated substrate every instance plugs into.
//   - Instance: one database engine whose ENTIRE buffer pool (pages and
//     metadata) lives in CXL memory (§3.1). Crash it and recover instantly
//     with PolarRecv (§3.2).
//   - SharingCluster: a multi-primary deployment over a buffer-fusion
//     server with the software cache-coherency protocol (§3.3).
//
// Everything runs in virtual time: operations take simulated nanoseconds on
// calibrated device models, so behaviour — including crash recovery and
// cache-coherency races — is deterministic and testable. See DESIGN.md for
// the substitution argument and EXPERIMENTS.md for paper-vs-measured
// results.
//
// # Quick start
//
//	reg := obs.New(obs.Options{})
//	cluster, _ := polarcxlmem.NewCluster(
//		polarcxlmem.ClusterConfig{PoolPages: 1024},
//		polarcxlmem.WithObserver(reg))
//	inst, _ := cluster.Start(polarcxlmem.InstanceConfig{
//		Name:        "db0",
//		PoolPages:   512,
//		GroupCommit: &wal.GroupPolicy{}, // batch concurrent commits
//	})
//	tbl, _ := inst.CreateTable("accounts")
//	tx := inst.Begin()
//	tx.Insert(tbl, 1, []byte("alice: 100"))
//	tx.Commit()
//	inst.Crash()                       // host dies; CXL memory survives
//	inst2, rec, _ := cluster.Recover("db0")
//	fmt.Println(rec.PagesTrusted)      // buffer pool reused in place
//	fmt.Println(reg.Snapshot().Counters["frametab.cxl.hits"])
//
// Instance behaviour beyond the commit pipeline — hot/cold tiering into
// host DRAM, per-tenant QoS, elastic CXL quotas — is configured through the
// consolidated InstanceConfig.Policy surface and adjusted at runtime with
// Cluster.Resize and Cluster.SetQoS. See docs/tiering.md.
//
// Failures are reported through typed sentinels — ErrNoCapacity,
// ErrInstanceExists, ErrUnknownInstance, ErrCrashed, ErrNotCrashed — always
// wrapped, so callers branch with errors.Is. Capacity rejections carry a
// *CapacityError (which tier, how much was left) for errors.As. See
// docs/commit-pipeline.md for the group-commit and background-flush knobs.
package polarcxlmem

import (
	"errors"
	"fmt"

	"polarcxlmem/internal/btree"
	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/checkpoint"
	"polarcxlmem/internal/core"
	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/dataplane"
	"polarcxlmem/internal/fault"
	"polarcxlmem/internal/flusher"
	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/recovery"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/storage"
	"polarcxlmem/internal/tier"
	"polarcxlmem/internal/txn"
	"polarcxlmem/internal/wal"
)

// Typed failure sentinels. Every facade error path wraps exactly one of
// these (with instance names and sizes in the wrapping message), so callers
// dispatch with errors.Is instead of matching strings.
var (
	// ErrNoCapacity: a tier has no room — no switch domain has enough
	// unallocated CXL memory for the requested buffer pool, a resize asked
	// for more than the instance's reservation, or a baseline's remote pool
	// overflowed. Re-exported from the buffer layer so every producer wraps
	// the same sentinel; rejections carry a *CapacityError with the numbers.
	ErrNoCapacity = buffer.ErrNoCapacity
	// ErrInstanceExists: the instance name is already taken on this cluster.
	ErrInstanceExists = errors.New("polarcxlmem: instance already exists")
	// ErrUnknownInstance: no instance with that name was ever started here.
	ErrUnknownInstance = errors.New("polarcxlmem: unknown instance")
	// ErrCrashed: the instance handle crashed; call Cluster.Recover to get a
	// fresh handle over the surviving CXL state.
	ErrCrashed = errors.New("polarcxlmem: instance has crashed")
	// ErrNotCrashed: Recover was called on a live instance.
	ErrNotCrashed = errors.New("polarcxlmem: instance has not crashed")
	// ErrBoxHealthy: Failover was called for an instance whose memory box is
	// still alive — the buffer pool image survived, so Recover (PolarRecv) is
	// the right restart path, not a cross-leaf rebuild.
	ErrBoxHealthy = errors.New("polarcxlmem: instance's memory box is healthy")
	// ErrPlacementPinned: Failover cannot relocate an instance whose
	// InstanceConfig.Placement pins the buffer pool to a specific leaf; the
	// operator asked for that leaf and nothing else.
	ErrPlacementPinned = errors.New("polarcxlmem: instance placement is pinned")
)

// ErrKeyNotFound is re-exported for callers.
var ErrKeyNotFound = btree.ErrKeyNotFound

// ErrFabricUnreachable is re-exported from the cxl fabric: any data-path
// operation that needs a failed trunk or leaf crossbar — or a powered-off
// memory box — wraps it. Branch with errors.Is.
var ErrFabricUnreachable = cxl.ErrFabricUnreachable

// Option configures cluster construction (NewCluster, NewSharingCluster).
type Option func(*clusterOptions)

type clusterOptions struct {
	reg *obs.Registry
	inj fault.Injector
}

// WithObserver threads an observability registry through every substrate
// the cluster builds: switch fabric and host links, the pooled memory
// device, buffer-pool frame tables, the group committer and background
// flusher of every instance started with those enabled, and the PolarRecv
// recovery pipeline. One registry sees the whole deployment.
func WithObserver(reg *obs.Registry) Option {
	return func(o *clusterOptions) { o.reg = reg }
}

// WithInjector installs a fault injector on every switch domain at
// construction — both the attach/detach RPC points and the pooled memory
// device itself — so deployment-level chaos and crash-point sweeps can be
// wired without reaching into internals. The injector sees setup traffic
// too; arm it (fault.Plan style) when the window of interest starts.
func WithInjector(inj fault.Injector) Option {
	return func(o *clusterOptions) { o.inj = inj }
}

// ClusterConfig sizes a CXL cluster. The fields group by the layer they
// drive: PoolPages/Pools/Fabric shape the CXL fabric (internal/cxl),
// Storage shapes the shared page store (internal/storage), and Dataplane
// fronts every instance with a request router (internal/dataplane).
// Per-instance behaviour — buffer pool, commit pipeline, checkpointing,
// tiering policy — lives on InstanceConfig instead.
type ClusterConfig struct {
	// --- Fabric (internal/cxl): switches, trunks, memory boxes ---

	// PoolPages is each CXL memory box's capacity in 16 KB page blocks. It
	// bounds the sum of the carves placed on one box (for elastic instances
	// the carve is Policy.Quota.MaxPages, not the initial allotment).
	PoolPages int64
	// Pools is the number of leaf switches — each a switch plus its memory
	// box — in the rack's fabric (the paper's Figure 5 deployment has two).
	// Default 1. With more than one, the leaves interconnect through a spine
	// crossbar over calibrated trunks, and instances are placed on the leaf
	// box with the most free capacity (see InstanceConfig.Placement to pin).
	Pools int
	// Fabric, when non-nil, declares the leaf/spine topology explicitly
	// (leaf count, per-tier bandwidths, inter-switch latency), overriding
	// Pools. A zero Fabric.PoolBytes is sized from PoolPages.
	Fabric *cxl.TopologyConfig

	// --- Shared storage (internal/storage) ---

	// Storage overrides the shared page-store device model every instance's
	// volume and redo log are provisioned from.
	Storage storage.Config

	// --- Front end (internal/dataplane) ---

	// Dataplane, when non-nil, puts a batched request router in front of
	// every instance the cluster starts: sessions submit through
	// Cluster.Router(name) instead of driving the engine directly, with
	// admission control and per-tenant rate limits per the config (zero
	// values mean dataplane defaults). Routers run in the concurrent drive
	// mode; an instance crash aborts its router (queued requests complete
	// with dataplane.ErrClosed) and Recover/Failover start a fresh one. The
	// config's Registry defaults to the cluster's observer. When an instance
	// has Policy.Tiering, its router also tags each request's tenant onto
	// the worker clock so page heat is attributed per tenant for QoS.
	Dataplane *dataplane.Config
}

// Placement pins an instance's components to fabric leaves. The zero value
// pins both to leaf 0; negative values mean "auto": PoolLeaf -1 places the
// buffer pool on the emptiest box, HostLeaf -1 co-locates the host with the
// pool (intra-switch, the default policy). A host on a different leaf than
// its pool pays the trunk+spine route on every page fill, write-back, and
// bulk transfer.
type Placement struct {
	// HostLeaf is the leaf switch the instance's host attaches to.
	HostLeaf int
	// PoolLeaf is the leaf whose memory box holds the buffer pool.
	PoolLeaf int
	// CheckpointLeaf is the leaf whose box holds the CXL-durable checkpoint
	// area (when InstanceConfig.Checkpoint is enabled). Negative = co-locate
	// with the buffer pool. Placing it on a DIFFERENT leaf keeps the
	// checkpoint record reachable when the pool's box dies, so Failover can
	// bound its redo scan instead of replaying from the truncation floor.
	CheckpointLeaf int
}

// InstanceConfig describes one database instance. Name and PoolPages are
// required; everything else defaults to the classic inline pipeline. The
// fields group by layer: sizing (core buffer pool + simcpu cache), the
// commit pipeline (wal/flusher/checkpoint daemons on the txn engine),
// placement (which fabric leaves hold what), and Policy (tiering, QoS, and
// elastic quotas — internal/tier plus the core fast tier).
type InstanceConfig struct {
	// --- Identity and sizing (core buffer pool, simcpu cache) ---

	// Name identifies the instance on its cluster (unique).
	Name string
	// PoolPages sizes the CXL buffer pool in 16 KB blocks. With
	// Policy.Quota set this is the INITIAL logical allotment (the physical
	// carve is Quota.MaxPages); adjust it live with Cluster.Resize.
	PoolPages int64
	// CacheBytes sizes the host-side CPU cache model (default 8 MiB).
	CacheBytes int64

	// --- Commit pipeline (internal/wal, flusher, checkpoint on txn) ---

	// GroupCommit, when non-nil, routes commit markers through a group
	// committer with this policy (zero value = defaults). Concurrent
	// committers share fsyncs; a lone committer behaves exactly like the
	// inline path.
	GroupCommit *wal.GroupPolicy
	// BackgroundFlush, when non-nil, enables the background dirty-page
	// flusher with this policy (zero value = defaults): eviction stops
	// paying inline write-back, at the cost of flusher ticks on the commit
	// path. Survives crash/recovery (re-applied by Cluster.Recover).
	BackgroundFlush *flusher.Policy
	// Checkpoint, when non-nil, enables continuous fuzzy checkpointing with
	// this policy (zero value = defaults): a 128-byte CXL-durable checkpoint
	// area is allocated next to the buffer pool, the checkpointer publishes
	// a checkpoint LSN each interval once the flusher has the dirty backlog
	// below the watermark, and the redo log is truncated behind the previous
	// checkpoint — bounding both recovery time and log size. Implies a
	// background flusher (a default one is enabled when BackgroundFlush is
	// nil). Survives crash/recovery: Cluster.Recover starts redo from the
	// checkpoint area and re-arms the checkpointer.
	Checkpoint *checkpoint.Policy

	// --- Placement (internal/cxl fabric leaves) ---

	// Placement, when non-nil, pins the instance's host and buffer pool to
	// fabric leaves instead of the default policy (pool on the emptiest box,
	// host co-located with it). Preserved across Recover.
	Placement *Placement

	// --- Policy (internal/tier + core fast tier + facade ledger) ---

	// Policy, when non-nil, attaches the consolidated tiering/QoS/quota
	// policy surface: hot pages mirrored into host DRAM, per-tenant
	// fast-tier budgets, and a runtime-elastic CXL allotment. See Policy's
	// field docs; preserved (with runtime Resize/SetQoS adjustments) across
	// Recover and Failover.
	Policy *Policy
}

// Cluster is a rack-scale CXL fabric — leaf switches, each fronting a
// memory box, joined by a spine when there is more than one — over shared
// storage and durable logs: the disaggregated substrate. It survives any
// Instance crash.
type Cluster struct {
	topo       *cxl.Topology
	storageCfg storage.Config
	stores     map[string]*storage.Store // one database volume per instance
	wals       map[string]*wal.Store

	instances  map[string]*Instance
	placement  map[string]int            // instance -> pool (box) leaf index
	hostLeaves map[string]int            // instance -> host attachment leaf
	ckptLeaves map[string]int            // instance -> checkpoint-area leaf
	configs    map[string]InstanceConfig // as started (PoolPages tracks Resize); re-applied on Recover
	qos        map[string]tier.QoS       // runtime SetQoS overrides; re-applied on Recover

	dpCfg   *dataplane.Config
	routers map[string]*dataplane.Router

	reg *obs.Registry
	inj fault.Injector
}

// NewCluster builds the substrate. Options wire cross-cutting concerns
// (observability, fault injection) through every switch domain.
func NewCluster(cfg ClusterConfig, opts ...Option) (*Cluster, error) {
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 1024
	}
	if cfg.Pools <= 0 {
		cfg.Pools = 1
	}
	var o clusterOptions
	for _, opt := range opts {
		opt(&o)
	}
	c := &Cluster{
		storageCfg: cfg.Storage,
		stores:     make(map[string]*storage.Store),
		wals:       make(map[string]*wal.Store),
		instances:  make(map[string]*Instance),
		placement:  make(map[string]int),
		hostLeaves: make(map[string]int),
		ckptLeaves: make(map[string]int),
		configs:    make(map[string]InstanceConfig),
		qos:        make(map[string]tier.QoS),
		dpCfg:      cfg.Dataplane,
		routers:    make(map[string]*dataplane.Router),
		reg:        o.reg,
		inj:        o.inj,
	}
	tc := cxl.TopologyConfig{Leaves: cfg.Pools}
	if cfg.Fabric != nil {
		tc = *cfg.Fabric
	}
	if tc.PoolBytes == 0 {
		tc.PoolBytes = core.RegionSizeFor(cfg.PoolPages) + 4096
	}
	c.topo = cxl.NewTopology(tc)
	if c.reg != nil {
		c.topo.SetObserver(c.reg)
	}
	if c.inj != nil {
		c.topo.SetInjector(c.inj)
		for i := 0; i < c.topo.Leaves(); i++ {
			c.topo.Leaf(i).Box().Device().SetInjector(c.inj)
		}
	}
	if c.reg != nil {
		recovery.SetObserver(c.reg)
	}
	return c, nil
}

// place picks the leaf whose memory box has the most unallocated memory for
// a new allocation of size bytes, or a *CapacityError if nothing fits.
// Failed (powered-off) boxes are never candidates.
func (c *Cluster) place(size int64) (int, error) {
	best, bestFree, maxFree := -1, int64(-1), int64(0)
	for i := 0; i < c.topo.Leaves(); i++ {
		if c.topo.BoxFailed(i) {
			continue
		}
		box := c.topo.Leaf(i).Box()
		free := box.Device().Size() - box.Manager().Allocated()
		if free > maxFree {
			maxFree = free
		}
		if free >= size && free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return 0, &CapacityError{Tier: "cxl", Requested: size, Free: maxFree, Unit: "bytes"}
	}
	return best, nil
}

// Instance is one database instance running directly on CXL memory.
type Instance struct {
	name    string
	cluster *Cluster
	clk     *simclock.Clock
	pool    *core.CXLPool
	eng     *txn.Engine
	ckpt    *checkpoint.Area // nil unless InstanceConfig.Checkpoint set
	tierd   *tier.Daemon     // nil unless Policy.Tiering set
	crashed bool
}

// Start boots a fresh instance from cfg: its buffer pool is placed on the
// emptiest switch domain, its commit pipeline configured per cfg, and —
// when the cluster has an observer — every layer instrumented.
func (c *Cluster) Start(cfg InstanceConfig) (*Instance, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("polarcxlmem: InstanceConfig.Name is required")
	}
	if cfg.PoolPages <= 0 {
		return nil, fmt.Errorf("polarcxlmem: instance %q needs PoolPages > 0", cfg.Name)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 8 << 20
	}
	if pol := cfg.Policy; pol != nil {
		if pol.Tiering != nil && pol.Tiering.FastPages <= 0 {
			return nil, fmt.Errorf("polarcxlmem: instance %q Policy.Tiering.FastPages must be > 0", cfg.Name)
		}
		if pol.Quota != nil {
			if err := pol.Quota.validate(cfg.Name, cfg.PoolPages); err != nil {
				return nil, err
			}
		}
	}
	// Elastic instances carve their CXL reservation at Quota.MaxPages up
	// front; PoolPages is just the initial logical allotment within it.
	carve := carvedPages(cfg)
	if _, ok := c.instances[cfg.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrInstanceExists, cfg.Name)
	}
	clk := simclock.New()
	poolLeaf, hostLeaf, ckptLeaf := -1, -1, -1
	if cfg.Placement != nil {
		poolLeaf, hostLeaf, ckptLeaf = cfg.Placement.PoolLeaf, cfg.Placement.HostLeaf, cfg.Placement.CheckpointLeaf
		if poolLeaf >= c.topo.Leaves() || hostLeaf >= c.topo.Leaves() || ckptLeaf >= c.topo.Leaves() {
			return nil, fmt.Errorf("polarcxlmem: instance %q placement (host %d, pool %d, ckpt %d) exceeds topology (%d leaves)",
				cfg.Name, hostLeaf, poolLeaf, ckptLeaf, c.topo.Leaves())
		}
	}
	if poolLeaf < 0 {
		var err error
		if poolLeaf, err = c.place(core.RegionSizeFor(carve)); err != nil {
			return nil, err
		}
	}
	if hostLeaf < 0 {
		hostLeaf = poolLeaf // default policy: intra-switch placement
	}
	host, err := c.topo.AttachHost(cfg.Name+"-host", hostLeaf)
	if err != nil {
		return nil, err
	}
	region, err := host.AllocateOn(clk, poolLeaf, cfg.Name, core.RegionSizeFor(carve))
	if err != nil {
		return nil, err
	}
	c.placement[cfg.Name] = poolLeaf
	c.hostLeaves[cfg.Name] = hostLeaf
	cache := host.NewCache(cfg.Name, cfg.CacheBytes)
	// Each instance is its own database: its own storage volume and log
	// stream on the shared storage service.
	store := storage.New(c.storageCfg)
	c.stores[cfg.Name] = store
	pool, err := core.Format(host, region, cache, store)
	if err != nil {
		return nil, err
	}
	ws := wal.NewStore(0, 0)
	c.wals[cfg.Name] = ws
	eng, err := txn.Bootstrap(clk, pool, wal.Attach(ws), store)
	if err != nil {
		return nil, err
	}
	inst := &Instance{name: cfg.Name, cluster: c, clk: clk, pool: pool, eng: eng}
	if cfg.Checkpoint != nil {
		// The checkpoint record lives in its own tiny CXL region — by default
		// on the same switch domain as the buffer pool, so it survives host
		// crashes with the pool and is reattachable by name on Recover.
		// Placement.CheckpointLeaf moves it to a different box, where it also
		// survives the POOL box's death and bounds Failover's redo scan.
		if ckptLeaf < 0 {
			ckptLeaf = poolLeaf
		}
		ckReg, err := host.AllocateAt(clk, ckptLeaf, cfg.Name+"-ckpt", checkpoint.AreaSize)
		if err != nil {
			return nil, err
		}
		inst.ckpt, err = checkpoint.NewArea(ckReg)
		if err != nil {
			return nil, err
		}
		c.ckptLeaves[cfg.Name] = ckptLeaf
	}
	if err := c.applyInstanceOptions(inst, cfg); err != nil {
		return nil, err
	}
	if err := c.applyPolicy(inst, cfg); err != nil {
		return nil, err
	}
	c.instances[cfg.Name] = inst
	c.configs[cfg.Name] = cfg
	c.startRouter(inst)
	return inst, nil
}

// applyInstanceOptions wires an engine's commit pipeline and observability
// per cfg — shared by Start and Recover so a recovered instance keeps the
// pipeline it was started with.
func (c *Cluster) applyInstanceOptions(inst *Instance, cfg InstanceConfig) error {
	if c.reg != nil {
		inst.pool.SetObserver(c.reg)
	}
	if cfg.GroupCommit != nil {
		gc := inst.eng.EnableGroupCommit(*cfg.GroupCommit)
		if c.reg != nil {
			gc.SetObserver(c.reg)
		}
	}
	flushPol := cfg.BackgroundFlush
	if flushPol == nil && cfg.Checkpoint != nil {
		// Fuzzy checkpoints need a flusher to drain the dirty backlog below
		// the watermark; default one in when the config omitted it.
		flushPol = &flusher.Policy{}
	}
	if flushPol != nil {
		fl, err := inst.eng.EnableBackgroundFlush(*flushPol)
		if err != nil {
			return err
		}
		if c.reg != nil {
			fl.SetObserver(c.reg)
		}
	}
	if cfg.Checkpoint != nil {
		if inst.ckpt == nil {
			return fmt.Errorf("polarcxlmem: instance %q has no checkpoint area", inst.name)
		}
		cp, err := inst.eng.EnableCheckpoints(inst.ckpt, *cfg.Checkpoint)
		if err != nil {
			return err
		}
		if c.reg != nil {
			cp.SetObserver(c.reg)
		}
	}
	return nil
}

// startRouter fronts an instance's engine with a running dataplane router
// when the cluster was configured with one. Any router left from a previous
// incarnation of the instance is aborted first.
func (c *Cluster) startRouter(inst *Instance) {
	if c.dpCfg == nil {
		return
	}
	if old := c.routers[inst.name]; old != nil {
		old.Abort()
	}
	cfg := *c.dpCfg
	if cfg.Registry == nil {
		cfg.Registry = c.reg
	}
	if cfg.Actor == "" {
		cfg.Actor = "dp-" + inst.name
	}
	if cfg.TenantTag == nil && inst.tierd != nil {
		// Tiering: bind each request's tenant to the worker clock so page
		// touches under it are heat-attributed to that tenant (QoS input).
		cfg.TenantTag = inst.tierd.Heat().Bind
	}
	r := dataplane.New(inst.eng, cfg)
	r.Run()
	c.routers[inst.name] = r
}

// Router returns an instance's front-end request router, or nil when the
// cluster was built without ClusterConfig.Dataplane (or the instance is
// unknown). The router of a crashed instance is aborted; Recover and
// Failover install a fresh one.
func (c *Cluster) Router(name string) *dataplane.Router { return c.routers[name] }

// Recover restarts a crashed instance with PolarRecv: the surviving CXL
// buffer pool is scanned, in-flight pages are rebuilt from redo, everything
// else is reused in place. The instance's original InstanceConfig — cache
// size, commit pipeline — is re-applied to the recovered engine. Returns
// the new instance and the recovery report.
func (c *Cluster) Recover(name string) (*Instance, *recovery.Result, error) {
	old, ok := c.instances[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	if !old.crashed {
		return nil, nil, fmt.Errorf("%w: instance %q is live", ErrNotCrashed, name)
	}
	cfg := c.configs[name]
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 8 << 20
	}
	clk := simclock.NewAt(old.clk.Now())
	host, err := c.topo.AttachHost(name+"-host", c.hostLeaves[name])
	if err != nil {
		return nil, nil, err
	}
	region, err := host.ReattachOn(clk, c.placement[name], name)
	if err != nil {
		return nil, nil, err
	}
	cache := host.NewCache(name, cfg.CacheBytes)
	var area *checkpoint.Area
	if cfg.Checkpoint != nil {
		ckReg, err := host.ReattachAt(clk, c.ckptLeaves[name], name+"-ckpt")
		if err != nil {
			return nil, nil, err
		}
		if area, err = checkpoint.NewArea(ckReg); err != nil {
			return nil, nil, err
		}
	}
	pool, eng, res, err := recovery.PolarRecv(clk, host, region, cache, c.wals[name], c.stores[name], area)
	if err != nil {
		return nil, nil, err
	}
	inst := &Instance{name: name, cluster: c, clk: clk, pool: pool, eng: eng, ckpt: area}
	if err := c.applyInstanceOptions(inst, cfg); err != nil {
		return nil, nil, err
	}
	if err := c.applyPolicy(inst, cfg); err != nil {
		return nil, nil, err
	}
	c.instances[name] = inst
	c.startRouter(inst)
	return inst, res, nil
}

// FailBox simulates whole-memory-box power loss on a leaf: the box's device
// refuses all access, its manager's lease table is gone, and its control
// endpoint deregisters. Every instance whose buffer pool lives on that box
// is crashed (the pool image is unreachable, which to the host is
// indistinguishable from losing it). Restart those instances with Failover
// — their pool image did NOT survive, so Recover's PolarRecv path does not
// apply.
func (c *Cluster) FailBox(leaf int) error {
	if leaf < 0 || leaf >= c.topo.Leaves() {
		return fmt.Errorf("polarcxlmem: no leaf %d (topology has %d)", leaf, c.topo.Leaves())
	}
	c.topo.FailBox(leaf)
	for name, inst := range c.instances {
		if c.placement[name] == leaf {
			inst.Crash()
		}
	}
	return nil
}

// RestoreBox powers leaf's memory box back on as replacement hardware:
// zeroed memory, empty lease table. Instances that failed over elsewhere
// keep running where they are; the leaf becomes a placement candidate
// again.
func (c *Cluster) RestoreBox(leaf int) error {
	if leaf < 0 || leaf >= c.topo.Leaves() {
		return fmt.Errorf("polarcxlmem: no leaf %d (topology has %d)", leaf, c.topo.Leaves())
	}
	c.topo.RestoreBox(leaf)
	return nil
}

// BoxFailed reports whether leaf's memory box is powered off.
func (c *Cluster) BoxFailed(leaf int) bool { return c.topo.BoxFailed(leaf) }

// Failover restarts an instance whose memory box died by rebuilding it on a
// surviving leaf: a fresh region is allocated on the emptiest healthy box,
// formatted, and reconstructed from shared storage plus the retained WAL
// (redo from the last reachable checkpoint, then undo). When the instance's
// checkpoint area lives on a box that survived — see
// Placement.CheckpointLeaf — the redo scan is bounded by its published
// checkpoint exactly as on an in-place Recover; when the area died with the
// pool, Failover falls back to the WAL truncation floor and re-arms the
// checkpointer over a fresh area next to the new pool.
//
// Failover refuses instances that are still live (ErrNotCrashed), whose box
// is healthy (ErrBoxHealthy — use Recover, the pool image survived), or
// whose Placement pins the pool to a leaf (ErrPlacementPinned).
func (c *Cluster) Failover(name string) (*Instance, *recovery.Result, error) {
	old, ok := c.instances[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	if !old.crashed {
		return nil, nil, fmt.Errorf("%w: instance %q is live", ErrNotCrashed, name)
	}
	deadLeaf := c.placement[name]
	if !c.topo.BoxFailed(deadLeaf) {
		return nil, nil, fmt.Errorf("%w: instance %q's pool box on leaf %d is up; use Recover", ErrBoxHealthy, name, deadLeaf)
	}
	cfg := c.configs[name]
	if cfg.Placement != nil && cfg.Placement.PoolLeaf >= 0 {
		return nil, nil, fmt.Errorf("%w: instance %q pool is pinned to leaf %d", ErrPlacementPinned, name, cfg.Placement.PoolLeaf)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 8 << 20
	}
	size := core.RegionSizeFor(carvedPages(cfg))
	newLeaf, err := c.place(size)
	if err != nil {
		return nil, nil, err
	}
	clk := simclock.NewAt(old.clk.Now())
	host, err := c.topo.AttachHost(name+"-host", c.hostLeaves[name])
	if err != nil {
		return nil, nil, err
	}
	region, err := host.AllocateOn(clk, newLeaf, name, size)
	if err != nil {
		return nil, nil, err
	}
	cache := host.NewCache(name, cfg.CacheBytes)
	// The checkpoint area either survived on another leaf (bounds redo) or
	// died with the pool box (fresh area, redo from the truncation floor).
	var survived, fresh *checkpoint.Area
	if cfg.Checkpoint != nil {
		areaLeaf := c.ckptLeaves[name]
		if !c.topo.BoxFailed(areaLeaf) {
			ckReg, err := host.ReattachAt(clk, areaLeaf, name+"-ckpt")
			if err != nil {
				return nil, nil, err
			}
			if survived, err = checkpoint.NewArea(ckReg); err != nil {
				return nil, nil, err
			}
		} else {
			ckReg, err := host.AllocateAt(clk, newLeaf, name+"-ckpt", checkpoint.AreaSize)
			if err != nil {
				return nil, nil, err
			}
			if fresh, err = checkpoint.NewArea(ckReg); err != nil {
				return nil, nil, err
			}
			c.ckptLeaves[name] = newLeaf
		}
	}
	pool, eng, res, err := recovery.Failover(clk, host, region, cache, c.wals[name], c.stores[name], survived)
	if err != nil {
		return nil, nil, err
	}
	inst := &Instance{name: name, cluster: c, clk: clk, pool: pool, eng: eng, ckpt: survived}
	if inst.ckpt == nil {
		inst.ckpt = fresh
	}
	if err := c.applyInstanceOptions(inst, cfg); err != nil {
		return nil, nil, err
	}
	if err := c.applyPolicy(inst, cfg); err != nil {
		return nil, nil, err
	}
	c.placement[name] = newLeaf
	c.instances[name] = inst
	c.startRouter(inst)
	return inst, res, nil
}

// Topology exposes the cluster's leaf/spine CXL fabric (stats, advanced
// wiring, per-tier congestion metrics).
func (c *Cluster) Topology() *cxl.Topology { return c.topo }

// Switch exposes the first leaf's single-switch view (stats, advanced
// wiring).
func (c *Cluster) Switch() *cxl.Switch { return c.topo.Switch(0) }

// Switches exposes a single-switch view per leaf in the fabric.
func (c *Cluster) Switches() []*cxl.Switch {
	out := make([]*cxl.Switch, c.topo.Leaves())
	for i := range out {
		out[i] = c.topo.Switch(i)
	}
	return out
}

// Observer returns the registry installed with WithObserver (nil if none).
func (c *Cluster) Observer() *obs.Registry { return c.reg }

// PlacementOf reports which switch domain hosts an instance's buffer pool.
func (c *Cluster) PlacementOf(name string) (int, bool) {
	i, ok := c.placement[name]
	return i, ok
}

// CheckpointLeafOf reports which leaf's box holds an instance's checkpoint
// area (ok=false when the instance has none). Operators planning box
// maintenance use it to know which instances lose their bounded-redo
// guarantee if a given box goes down.
func (c *Cluster) CheckpointLeafOf(name string) (int, bool) {
	i, ok := c.ckptLeaves[name]
	return i, ok
}

// Storage exposes an instance's page-store volume.
func (c *Cluster) Storage(instance string) *storage.Store { return c.stores[instance] }

// Name reports the instance name.
func (i *Instance) Name() string { return i.name }

// Clock exposes the instance's virtual clock.
func (i *Instance) Clock() *simclock.Clock { return i.clk }

// Engine exposes the transaction engine for advanced use (e.g. concurrent
// committers, each with its own clock, via Engine().Begin).
func (i *Instance) Engine() *txn.Engine { return i.eng }

// Pool exposes the CXL buffer pool (stats, diagnostics).
func (i *Instance) Pool() *core.CXLPool { return i.pool }

// CheckpointArea exposes the CXL-durable checkpoint record, or nil when the
// instance was started without InstanceConfig.Checkpoint.
func (i *Instance) CheckpointArea() *checkpoint.Area { return i.ckpt }

// Tiering exposes the instance's placement daemon (heat map, stats, QoS),
// or nil when it was started without Policy.Tiering.
func (i *Instance) Tiering() *tier.Daemon { return i.tierd }

func (i *Instance) alive() error {
	if i.crashed {
		return fmt.Errorf("%w: %q; call Cluster.Recover", ErrCrashed, i.name)
	}
	return nil
}

// CreateTable creates a named B+tree table.
func (i *Instance) CreateTable(name string) (*Table, error) {
	if err := i.alive(); err != nil {
		return nil, err
	}
	tr, err := i.eng.CreateTable(i.clk, name)
	if err != nil {
		return nil, err
	}
	return &Table{tree: tr, inst: i}, nil
}

// OpenTable opens an existing table from the durable catalog.
func (i *Instance) OpenTable(name string) (*Table, error) {
	if err := i.alive(); err != nil {
		return nil, err
	}
	tr, err := i.eng.Table(i.clk, name)
	if err != nil {
		return nil, err
	}
	return &Table{tree: tr, inst: i}, nil
}

// Begin starts a transaction.
func (i *Instance) Begin() *Txn {
	return &Txn{tx: i.eng.Begin(i.clk), inst: i}
}

// Checkpoint forces the log and flushes dirty pages to storage.
func (i *Instance) Checkpoint() error {
	if err := i.alive(); err != nil {
		return err
	}
	return i.eng.Checkpoint(i.clk)
}

// Crash simulates a host failure: local DRAM state and the CPU cache are
// lost; the CXL buffer pool, the durable log, and storage survive. The
// instance's dataplane router (if any) is aborted: queued requests complete
// with dataplane.ErrClosed, exactly what in-flight clients of a dead front
// end observe.
func (i *Instance) Crash() {
	if i.crashed {
		return
	}
	i.crashed = true
	if r := i.cluster.routers[i.name]; r != nil {
		r.Abort()
	}
	i.pool.Crash()
}

// Table is a handle to a B+tree table.
type Table struct {
	tree *btree.Tree
	inst *Instance
}

// Tree exposes the underlying B+tree.
func (t *Table) Tree() *btree.Tree { return t.tree }

// Txn is a transaction on an instance.
type Txn struct {
	tx   *txn.Txn
	inst *Instance
}

// Insert adds (key, value) to table.
func (t *Txn) Insert(table *Table, key int64, value []byte) error {
	return t.tx.Insert(table.tree, key, value)
}

// Update replaces key's value.
func (t *Txn) Update(table *Table, key int64, value []byte) error {
	return t.tx.Update(table.tree, key, value)
}

// Delete removes key.
func (t *Txn) Delete(table *Table, key int64) error {
	return t.tx.Delete(table.tree, key)
}

// Get reads key's value.
func (t *Txn) Get(table *Table, key int64) ([]byte, error) {
	return t.tx.Get(table.tree, key)
}

// Scan reads up to limit records with key >= from.
func (t *Txn) Scan(table *Table, from int64, limit int) ([]btree.KV, error) {
	return t.tx.Scan(table.tree, from, limit)
}

// Commit makes the transaction durable (group commit).
func (t *Txn) Commit() error { return t.tx.Commit() }

// Rollback undoes the transaction.
func (t *Txn) Rollback() error { return t.tx.Rollback() }
