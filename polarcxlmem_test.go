package polarcxlmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"polarcxlmem/internal/sharing"
)

func TestFacadeLifecycle(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cluster.Start(InstanceConfig{Name: "db0", PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name() != "db0" {
		t.Fatal("name")
	}
	tbl, err := inst.CreateTable("accounts")
	if err != nil {
		t.Fatal(err)
	}
	tx := inst.Begin()
	for k := int64(1); k <= 50; k++ {
		if err := tx.Insert(tbl, k, []byte(fmt.Sprintf("acct-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := inst.Begin()
	v, err := tx2.Get(tbl, 7)
	if err != nil || string(v) != "acct-7" {
		t.Fatalf("get = %q, %v", v, err)
	}
	kvs, err := tx2.Scan(tbl, 10, 5)
	if err != nil || len(kvs) != 5 || kvs[0].Key != 10 {
		t.Fatalf("scan = %v, %v", kvs, err)
	}
	if err := tx2.Update(tbl, 7, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete(tbl, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx3 := inst.Begin()
	v, _ = tx3.Get(tbl, 7)
	if string(v) != "acct-7" {
		t.Fatalf("rollback lost: %q", v)
	}
	if _, err := tx3.Get(tbl, 8); err != nil {
		t.Fatal("rolled-back delete missing")
	}
	tx3.Commit()
	if err := inst.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCrashRecover(t *testing.T) {
	cluster, _ := NewCluster(ClusterConfig{PoolPages: 128})
	inst, _ := cluster.Start(InstanceConfig{Name: "db0", PoolPages: 64})
	tbl, _ := inst.CreateTable("t")
	tx := inst.Begin()
	for k := int64(0); k < 100; k++ {
		tx.Insert(tbl, k, []byte(fmt.Sprintf("v%03d", k)))
	}
	tx.Commit()
	inst.Checkpoint()

	// Uncommitted tail, then crash.
	tx2 := inst.Begin()
	tx2.Update(tbl, 5, []byte("BOOM"))
	inst.Crash()

	// The crashed handle refuses work.
	if _, err := inst.CreateTable("x"); err == nil {
		t.Fatal("crashed instance accepted work")
	}
	if _, _, err := cluster.Recover("nope"); err == nil {
		t.Fatal("recovered unknown instance")
	}
	inst2, rec, err := cluster.Recover("db0")
	if err != nil {
		t.Fatal(err)
	}
	if rec.PagesTrusted == 0 {
		t.Fatalf("recovery report: %+v", rec)
	}
	tbl2, err := inst2.OpenTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx3 := inst2.Begin()
	v, err := tx3.Get(tbl2, 5)
	if err != nil || !bytes.Equal(v, []byte("v005")) {
		t.Fatalf("after recovery Get(5) = %q, %v (uncommitted update must be gone)", v, err)
	}
	if _, err := tx3.Get(tbl2, 12345); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
	tx3.Commit()
	// Double recover requires another crash.
	if _, _, err := cluster.Recover("db0"); err == nil {
		t.Fatal("recovered a live instance")
	}
}

func TestFacadeDuplicateInstance(t *testing.T) {
	cluster, _ := NewCluster(ClusterConfig{PoolPages: 128})
	if _, err := cluster.Start(InstanceConfig{Name: "a", PoolPages: 32}); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Start(InstanceConfig{Name: "a", PoolPages: 32}); err == nil {
		t.Fatal("duplicate instance accepted")
	}
}

// TestFacadeTypedErrors pins the error contract of the redesigned API:
// every facade failure path wraps one of the exported sentinels, so callers
// dispatch with errors.Is rather than string matching.
func TestFacadeTypedErrors(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}

	// ErrNoCapacity: an instance bigger than the whole pool.
	if _, err := cluster.Start(InstanceConfig{Name: "huge", PoolPages: 1 << 20}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("oversized Start err = %v, want ErrNoCapacity", err)
	}

	inst, err := cluster.Start(InstanceConfig{Name: "db0", PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}

	// ErrInstanceExists: same name twice (via both constructors).
	if _, err := cluster.Start(InstanceConfig{Name: "db0", PoolPages: 8}); !errors.Is(err, ErrInstanceExists) {
		t.Fatalf("duplicate Start err = %v, want ErrInstanceExists", err)
	}
	if _, err := cluster.Start(InstanceConfig{Name: "db0", PoolPages: 8}); !errors.Is(err, ErrInstanceExists) {
		t.Fatalf("duplicate Start err = %v, want ErrInstanceExists", err)
	}

	// ErrUnknownInstance: recovering a name never started.
	if _, _, err := cluster.Recover("nope"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("Recover(unknown) err = %v, want ErrUnknownInstance", err)
	}

	// ErrNotCrashed: recovering a live instance.
	if _, _, err := cluster.Recover("db0"); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("Recover(live) err = %v, want ErrNotCrashed", err)
	}

	// ErrCrashed: every entry point on a dead handle.
	inst.Crash()
	if _, err := inst.CreateTable("t"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("CreateTable on crashed err = %v, want ErrCrashed", err)
	}
	if _, err := inst.OpenTable("t"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("OpenTable on crashed err = %v, want ErrCrashed", err)
	}
	if err := inst.Checkpoint(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Checkpoint on crashed err = %v, want ErrCrashed", err)
	}

	// Recovery clears the condition.
	if _, _, err := cluster.Recover("db0"); err != nil {
		t.Fatal(err)
	}
}

func TestSharingClusterCoherency(t *testing.T) {
	sc, err := NewSharingCluster(SharingConfig{Nodes: 3, DBPPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	pid, err := sc.SeedPage()
	if err != nil {
		t.Fatal(err)
	}
	clk := sc.Clock()
	// Round-robin counter increments across all nodes.
	const rounds = 20
	for r := 0; r < rounds; r++ {
		for i := 0; i < sc.Nodes(); i++ {
			err := sc.Node(i).ReadModifyWrite(clk, pid, 64, 8, func(b []byte) {
				binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	buf := make([]byte, 8)
	if err := sc.Node(0).Read(clk, pid, 64, buf); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(buf); got != rounds*3 {
		t.Fatalf("counter = %d, want %d", got, rounds*3)
	}
	if sc.Fusion().ResidentPages() != 1 {
		t.Fatal("fusion bookkeeping")
	}
}

func TestSharingClusterValidation(t *testing.T) {
	if _, err := NewSharingCluster(SharingConfig{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestMultiPoolPlacement(t *testing.T) {
	// A two-domain rack (the paper's Figure 5 deployment): instances spread
	// across pools by free capacity, and each recovers on its own domain.
	cluster, err := NewCluster(ClusterConfig{PoolPages: 64, Pools: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster.Switches()) != 2 {
		t.Fatal("rack has wrong domain count")
	}
	// Each instance needs ~48 blocks; one pool holds one such instance.
	a, err := cluster.Start(InstanceConfig{Name: "a", PoolPages: 48})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.Start(InstanceConfig{Name: "b", PoolPages: 48})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := cluster.PlacementOf("a")
	pb, _ := cluster.PlacementOf("b")
	if pa == pb {
		t.Fatalf("both instances placed on domain %d", pa)
	}
	// A third instance of the same size cannot fit anywhere.
	if _, err := cluster.Start(InstanceConfig{Name: "c", PoolPages: 48}); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
	// But a small one can.
	if _, err := cluster.Start(InstanceConfig{Name: "small", PoolPages: 8}); err != nil {
		t.Fatal(err)
	}
	// Crash/recover an instance: it must come back on its original domain
	// with its data.
	tbl, err := a.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := a.Begin()
	tx.Insert(tbl, 1, []byte("pool-local"))
	tx.Commit()
	a.Crash()
	a2, _, err := cluster.Recover("a")
	if err != nil {
		t.Fatal(err)
	}
	pa2, _ := cluster.PlacementOf("a")
	if pa2 != pa {
		t.Fatal("recovery moved the instance to another domain")
	}
	tbl2, _ := a2.OpenTable("t")
	tx2 := a2.Begin()
	v, err := tx2.Get(tbl2, 1)
	if err != nil || string(v) != "pool-local" {
		t.Fatalf("post-recovery read: %q, %v", v, err)
	}
	_ = b
}

func TestSharingClusterCrashRejoin(t *testing.T) {
	sc, err := NewSharingCluster(SharingConfig{Nodes: 3, DBPPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	pid, err := sc.SeedPage()
	if err != nil {
		t.Fatal(err)
	}
	clk := sc.Clock()
	bump := func(i int) {
		t.Helper()
		err := sc.Node(i).ReadModifyWrite(clk, pid, 64, 8, func(b []byte) {
			binary.LittleEndian.PutUint64(b, binary.LittleEndian.Uint64(b)+1)
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	const rounds = 5
	for r := 0; r < rounds; r++ {
		for i := 0; i < 3; i++ {
			bump(i)
		}
	}
	// Checkpoint the DBP: with no WAL attached, eviction rebuilds a
	// write-held frame from the last durable storage image (anything newer is
	// indistinguishable from the dead writer's torn bytes), so the cluster
	// must flush to bound its loss window.
	if err := sc.Fusion().FlushDirty(clk, nil); err != nil {
		t.Fatal(err)
	}
	// Node 2 dies holding the page's write lock.
	if err := sc.Fusion().Lock(clk, sc.Node(2).Name(), pid, true); err != nil {
		t.Fatal(err)
	}
	if err := sc.CrashPrimary(2); err != nil {
		t.Fatal(err)
	}
	// The dead node is fenced; survivors reclaim the lock and keep counting.
	if err := sc.Node(2).Read(clk, pid, 64, make([]byte, 8)); !errors.Is(err, sharing.ErrNodeEvicted) {
		t.Fatalf("crashed node should be fenced, got %v", err)
	}
	for r := 0; r < rounds; r++ {
		bump(0)
		bump(1)
	}
	if rep := sc.Fusion().Fsck(); !rep.OK() {
		t.Fatalf("fsck after crash: %v", rep.Problems)
	}
	// Rejoin and keep counting from all three nodes.
	if err := sc.RejoinPrimary(2); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < 3; i++ {
			bump(i)
		}
	}
	buf := make([]byte, 8)
	if err := sc.Node(0).Read(clk, pid, 64, buf); err != nil {
		t.Fatal(err)
	}
	want := uint64(rounds * 8) // 3 nodes + 2 survivors + 3 nodes, x rounds
	if got := binary.LittleEndian.Uint64(buf); got != want {
		t.Fatalf("counter = %d, want %d (no committed increment may be lost)", got, want)
	}
	if rep := sc.Fusion().Fsck(); !rep.OK() {
		t.Fatalf("fsck after rejoin: %v", rep.Problems)
	}
}
