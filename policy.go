package polarcxlmem

import (
	"fmt"

	"polarcxlmem/internal/buffer"
	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/tier"
)

// Policy is the consolidated per-instance policy surface: hot/cold tiering,
// multi-tenant QoS, and elastic capacity land here as one coherent option
// group instead of accreting onto InstanceConfig field by field. Each field
// is independent and optional; the zero value (or a nil *Policy) is the
// classic static instance — all pages in CXL, capacity fixed at Start.
type Policy struct {
	// Tiering, when non-nil, attaches an inclusive host-DRAM fast tier to
	// the instance's CXL buffer pool (drives internal/tier + core): page
	// accesses feed a decaying heat map, and a placement daemon ticked from
	// the commit path promotes the hottest pages into DRAM mirrors (reads
	// served at DRAM cost, no CXL traffic) and demotes cold ones. The CXL
	// copy remains the durable home, so PolarRecv and crash semantics are
	// unchanged. Zero Config fields (except FastPages, required) default.
	Tiering *tier.Config
	// QoS, when non-nil, sets the initial per-tenant fast-tier budgets the
	// placement daemon enforces (drives internal/tier; tenant ids flow in
	// from dataplane requests). Replace at runtime with Cluster.SetQoS.
	// Meaningful only with Tiering.
	QoS *tier.QoS
	// Quota, when non-nil, makes the instance's CXL allotment elastic
	// (drives core's block quota + the facade ledger): the CXL region is
	// physically carved at MaxPages up front — CXL 3.0 dynamic-capacity
	// style, the carve is the reservation — and InstanceConfig.PoolPages
	// becomes the initial LOGICAL allotment, adjustable at runtime within
	// [MinPages, MaxPages] via Cluster.Resize.
	Quota *QuotaPolicy
}

// QuotaPolicy bounds an elastic instance's CXL allotment in 16 KB pages.
type QuotaPolicy struct {
	// MinPages is the smallest allotment Resize accepts (default 1).
	MinPages int64
	// MaxPages is the carve size and the largest allotment Resize accepts.
	// Required: it is the physical reservation on the memory box.
	MaxPages int64
}

// validate checks a quota policy against the instance's initial PoolPages.
func (q QuotaPolicy) validate(name string, poolPages int64) error {
	if q.MaxPages <= 0 {
		return fmt.Errorf("polarcxlmem: instance %q Quota.MaxPages must be > 0", name)
	}
	min := q.MinPages
	if min <= 0 {
		min = 1
	}
	if min > q.MaxPages {
		return fmt.Errorf("polarcxlmem: instance %q Quota.MinPages %d exceeds MaxPages %d", name, q.MinPages, q.MaxPages)
	}
	if poolPages < min || poolPages > q.MaxPages {
		return fmt.Errorf("polarcxlmem: instance %q PoolPages %d outside quota [%d, %d]", name, poolPages, min, q.MaxPages)
	}
	return nil
}

// CapacityError is the typed form of a capacity rejection: which tier ran
// out ("cxl", "remote", "dram"), what was asked for, and what remains. It
// wraps ErrNoCapacity, so existing errors.Is(err, ErrNoCapacity) dispatch
// keeps working; use errors.As to read the numbers. The type is shared with
// the internal buffer tiers (an RDMA remote-pool overflow surfaces the same
// way as a facade placement failure).
type CapacityError = buffer.CapacityError

// carvedPages reports the physical CXL carve for a config: MaxPages for an
// elastic instance, PoolPages for a static one.
func carvedPages(cfg InstanceConfig) int64 {
	if cfg.Policy != nil && cfg.Policy.Quota != nil {
		return cfg.Policy.Quota.MaxPages
	}
	return cfg.PoolPages
}

// applyPolicy wires an instance's tiering/QoS/quota per cfg.Policy — shared
// by Start, Recover, and Failover so a restarted instance keeps (and
// re-enforces) the policy and its latest runtime adjustments: the current
// allotment lives in c.configs[name].PoolPages (updated by Resize) and the
// current QoS in c.qos[name] (updated by SetQoS).
func (c *Cluster) applyPolicy(inst *Instance, cfg InstanceConfig) error {
	pol := cfg.Policy
	if pol == nil {
		return nil
	}
	if pol.Quota != nil {
		// Re-imposing the quota on a recovered pool may have to evict
		// overflow immediately (the allotment may have shrunk since the
		// crash); that is the normal LRU eviction path.
		if err := inst.pool.SetBlockQuota(inst.clk, cfg.PoolPages); err != nil {
			return fmt.Errorf("polarcxlmem: instance %q quota %d pages: %w", inst.name, cfg.PoolPages, err)
		}
	}
	if pol.Tiering != nil {
		heat := tier.NewHeat(pol.Tiering.HalfLifeNanos)
		inst.pool.EnableTiering(heat, cxl.BufferDRAMProfile())
		d := tier.NewDaemon(heat, inst.pool, *pol.Tiering)
		if q, ok := c.qos[inst.name]; ok {
			d.SetQoS(q)
		} else if pol.QoS != nil {
			d.SetQoS(*pol.QoS)
		}
		if c.reg != nil {
			d.SetObserver(c.reg, inst.name)
		}
		inst.eng.EnableTiering(d)
		inst.tierd = d
	}
	return nil
}

// Resize adjusts a live elastic instance's CXL allotment to pages — the
// cluster-level elasticity knob: grow a hot instance into its reservation,
// shrink an idle one so the operator can oversubscribe the rack. Shrinking
// below current residency evicts LRU overflow immediately (dirty pages flush
// to storage first) and fails if the overflow is pinned. Requires the
// instance to have been started with Policy.Quota; pages must lie within
// [MinPages, MaxPages] — beyond MaxPages is a *CapacityError (the carve is
// the hard reservation; re-Start the instance to renegotiate it). The new
// allotment survives Recover and Failover.
func (c *Cluster) Resize(name string, pages int64) error {
	inst, ok := c.instances[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	if err := inst.alive(); err != nil {
		return err
	}
	cfg := c.configs[name]
	if cfg.Policy == nil || cfg.Policy.Quota == nil {
		return fmt.Errorf("polarcxlmem: instance %q has no Policy.Quota; its allotment is fixed at Start", name)
	}
	q := *cfg.Policy.Quota
	min := q.MinPages
	if min <= 0 {
		min = 1
	}
	if pages < min {
		return fmt.Errorf("polarcxlmem: instance %q resize to %d pages is below Quota.MinPages %d", name, pages, min)
	}
	if pages > q.MaxPages {
		return &CapacityError{Tier: "cxl", Requested: pages, Free: q.MaxPages, Unit: "pages"}
	}
	if err := inst.pool.SetBlockQuota(inst.clk, pages); err != nil {
		return fmt.Errorf("polarcxlmem: instance %q resize to %d pages: %w", name, pages, err)
	}
	cfg.PoolPages = pages
	c.configs[name] = cfg
	return nil
}

// SetQoS replaces a live instance's per-tenant fast-tier budgets. Takes
// effect at the next placement tick (over-budget tenants' coldest pages are
// demoted first) and survives Recover/Failover. Requires Policy.Tiering.
func (c *Cluster) SetQoS(name string, q tier.QoS) error {
	inst, ok := c.instances[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	if err := inst.alive(); err != nil {
		return err
	}
	if inst.tierd == nil {
		return fmt.Errorf("polarcxlmem: instance %q has no Policy.Tiering; QoS has nothing to govern", name)
	}
	inst.tierd.SetQoS(q)
	c.qos[name] = q
	return nil
}

// AllotmentOf reports an instance's current CXL allotment in pages (its
// live quota for elastic instances, PoolPages otherwise).
func (c *Cluster) AllotmentOf(name string) (int64, bool) {
	cfg, ok := c.configs[name]
	if !ok {
		return 0, false
	}
	return cfg.PoolPages, true
}
