package polarcxlmem

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"polarcxlmem/internal/obs"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/tier"
)

// bigRow is a 512-byte row value stamped with its key: large enough that a
// few hundred rows span dozens of 16 KiB leaves, so small block quotas
// actually bind.
func bigRow(k int64) []byte {
	b := make([]byte, 512)
	copy(b, fmt.Sprintf("row-%04d", k))
	return b
}

// tieredConfig is a tiering policy tuned for tests: place on every commit,
// slow decay, so a handful of touches promotes deterministically.
func tieredConfig(fastPages int) *tier.Config {
	return &tier.Config{
		FastPages:     fastPages,
		IntervalNanos: 1,
		HalfLifeNanos: 100 * simclock.Millisecond,
	}
}

func TestPolicyValidation(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  InstanceConfig
	}{
		{"zero FastPages", InstanceConfig{Name: "a", PoolPages: 32,
			Policy: &Policy{Tiering: &tier.Config{}}}},
		{"zero MaxPages", InstanceConfig{Name: "b", PoolPages: 32,
			Policy: &Policy{Quota: &QuotaPolicy{}}}},
		{"MinPages over MaxPages", InstanceConfig{Name: "c", PoolPages: 32,
			Policy: &Policy{Quota: &QuotaPolicy{MinPages: 64, MaxPages: 32}}}},
		{"PoolPages over MaxPages", InstanceConfig{Name: "d", PoolPages: 64,
			Policy: &Policy{Quota: &QuotaPolicy{MaxPages: 32}}}},
		{"PoolPages under MinPages", InstanceConfig{Name: "e", PoolPages: 4,
			Policy: &Policy{Quota: &QuotaPolicy{MinPages: 8, MaxPages: 32}}}},
	}
	for _, c := range cases {
		if _, err := cluster.Start(c.cfg); err == nil {
			t.Errorf("%s: Start accepted invalid policy", c.name)
		}
	}
}

func TestPlacementCapacityErrorTyped(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.Start(InstanceConfig{Name: "big", PoolPages: 1 << 20})
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CapacityError", err)
	}
	if ce.Tier != "cxl" || ce.Unit != "bytes" || ce.Requested <= 0 {
		t.Fatalf("capacity error = %+v", ce)
	}
}

func TestResizeElasticAllotment(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cluster.Start(InstanceConfig{
		Name:      "db0",
		PoolPages: 16,
		Policy:    &Policy{Quota: &QuotaPolicy{MinPages: 8, MaxPages: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := cluster.AllotmentOf("db0"); got != 16 {
		t.Fatalf("initial allotment = %d, want 16", got)
	}
	if got := inst.Pool().BlockQuota(); got != 16 {
		t.Fatalf("initial quota = %d, want 16", got)
	}
	// Load more data than the allotment; the working set spills via quota
	// evictions even though the carve has free blocks.
	tbl, err := inst.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := inst.Begin()
	for k := int64(1); k <= 400; k++ {
		if err := tx.Insert(tbl, k, bigRow(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := inst.Pool().Resident(); int64(got) > 16 {
		t.Fatalf("resident %d exceeds 16-page allotment", got)
	}
	// The dataset genuinely overflows the allotment: the quota was binding.
	if err := inst.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Grow into the reservation.
	if err := cluster.Resize("db0", 64); err != nil {
		t.Fatal(err)
	}
	if got := inst.Pool().BlockQuota(); got != 64 {
		t.Fatalf("quota after grow = %d, want 64", got)
	}
	if got, _ := cluster.AllotmentOf("db0"); got != 64 {
		t.Fatalf("allotment after grow = %d, want 64", got)
	}

	// Beyond the carve: typed capacity rejection.
	err = cluster.Resize("db0", 65)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("over-carve resize err = %v, want ErrNoCapacity", err)
	}
	var ce *CapacityError
	if !errors.As(err, &ce) || ce.Tier != "cxl" || ce.Unit != "pages" || ce.Requested != 65 || ce.Free != 64 {
		t.Fatalf("capacity error = %+v", ce)
	}

	// Below the floor.
	if err := cluster.Resize("db0", 4); err == nil {
		t.Fatal("resize below MinPages accepted")
	}
	// Shrink back down: overflow evicts, data survives.
	if err := cluster.Resize("db0", 8); err != nil {
		t.Fatal(err)
	}
	if got := inst.Pool().Resident(); int64(got) > 8 {
		t.Fatalf("resident %d exceeds shrunk 8-page allotment", got)
	}
	tx2 := inst.Begin()
	for _, k := range []int64{1, 200, 400} {
		if v, err := tx2.Get(tbl, k); err != nil || !bytes.Equal(v, bigRow(k)) {
			t.Fatalf("get %d after shrink = %.16q, %v", k, v, err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Non-elastic and unknown instances.
	if _, err := cluster.Start(InstanceConfig{Name: "static", PoolPages: 16}); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Resize("static", 32); err == nil {
		t.Fatal("Resize on a quota-less instance accepted")
	}
	if err := cluster.Resize("ghost", 32); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("Resize unknown err = %v, want ErrUnknownInstance", err)
	}
}

func TestResizeSurvivesRecover(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cluster.Start(InstanceConfig{
		Name:      "db0",
		PoolPages: 32,
		Policy: &Policy{
			Quota:   &QuotaPolicy{MinPages: 8, MaxPages: 64},
			Tiering: tieredConfig(8),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := inst.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := inst.Begin()
	for k := int64(1); k <= 50; k++ {
		if err := tx.Insert(tbl, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Resize("db0", 12); err != nil {
		t.Fatal(err)
	}
	cluster.SetQoS("db0", tier.QoS{DefaultFastPages: 3})

	inst.Crash()
	inst2, _, err := cluster.Recover("db0")
	if err != nil {
		t.Fatal(err)
	}
	// The resized allotment, the tiering daemon, and the runtime QoS all
	// survive recovery.
	if got := inst2.Pool().BlockQuota(); got != 12 {
		t.Fatalf("quota after recover = %d, want 12", got)
	}
	if got, _ := cluster.AllotmentOf("db0"); got != 12 {
		t.Fatalf("allotment after recover = %d, want 12", got)
	}
	if inst2.Tiering() == nil {
		t.Fatal("tiering daemon not re-armed by Recover")
	}
	if got := inst2.Tiering().QoS().DefaultFastPages; got != 3 {
		t.Fatalf("QoS after recover = %d, want 3", got)
	}
	tx2 := inst2.Begin()
	if v, err := tx2.Get(tbl, 25); err != nil || string(v) != "v" {
		t.Fatalf("get after recover = %q, %v", v, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTieringPromotesHotSetThroughFacade(t *testing.T) {
	reg := obs.New(obs.Options{})
	for _, c := range obs.DefaultCheckers() {
		reg.AddChecker(c)
	}
	cluster, err := NewCluster(ClusterConfig{PoolPages: 256}, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cluster.Start(InstanceConfig{
		Name:      "db0",
		PoolPages: 64,
		Policy:    &Policy{Tiering: tieredConfig(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Tiering() == nil || !inst.Pool().TieringEnabled() {
		t.Fatal("Policy.Tiering did not arm the daemon")
	}
	tbl, err := inst.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := inst.Begin()
	for k := int64(1); k <= 300; k++ {
		if err := tx.Insert(tbl, k, []byte(fmt.Sprintf("row-%04d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Hammer a small hot set; each commit ticks the placement daemon.
	for round := 0; round < 20; round++ {
		tx := inst.Begin()
		for _, k := range []int64{7, 8, 9} {
			if _, err := tx.Get(tbl, k); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st := inst.Tiering().Stats()
	if st.Runs == 0 || st.Promotions == 0 {
		t.Fatalf("daemon stats = %+v, want runs and promotions > 0", st)
	}
	if hits := inst.Pool().FastHits(); hits == 0 {
		t.Fatal("no reads served from the fast tier")
	}
	snap := reg.Snapshot()
	if snap.Counters["tier.db0.promotions"] == 0 {
		t.Fatalf("tier.db0.promotions counter = 0; counters: %v", snap.Counters)
	}
	for _, v := range reg.Finish() {
		t.Errorf("checker violation: %s: %s", v.Checker, v.Detail)
	}
}

func TestSetQoSRequiresTiering(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Start(InstanceConfig{Name: "plain", PoolPages: 16}); err != nil {
		t.Fatal(err)
	}
	if err := cluster.SetQoS("plain", tier.QoS{DefaultFastPages: 1}); err == nil {
		t.Fatal("SetQoS on a tiering-less instance accepted")
	}
	if err := cluster.SetQoS("ghost", tier.QoS{}); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("SetQoS unknown err = %v, want ErrUnknownInstance", err)
	}
	inst, err := cluster.Start(InstanceConfig{
		Name: "tiered", PoolPages: 16,
		Policy: &Policy{Tiering: tieredConfig(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.SetQoS("tiered", tier.QoS{DefaultFastPages: 2}); err != nil {
		t.Fatal(err)
	}
	if got := inst.Tiering().QoS().DefaultFastPages; got != 2 {
		t.Fatalf("live QoS = %d, want 2", got)
	}
}
