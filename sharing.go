package polarcxlmem

import (
	"fmt"

	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/sharing"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simmem"
	"polarcxlmem/internal/storage"
)

// SharingConfig sizes a multi-primary deployment.
type SharingConfig struct {
	Nodes    int // database nodes
	DBPPages int // distributed-buffer-pool frames in CXL
	// MetaSlots bounds each node's page-metadata buffer (default 4096).
	MetaSlots int
	// Fabric, when non-nil, declares a leaf/spine topology (leaf count,
	// bandwidths, inter-switch latency). Nil = single switch. The fusion
	// host, the DBP, and every node's flag words live on leaf 0's memory
	// box; Fabric.PoolBytes defaults to the sized DBP+flags capacity.
	Fabric *cxl.TopologyConfig
	// NodeLeaves places node i's host on leaf NodeLeaves[i]. Nil or short
	// slices default remaining nodes to leaf 0. A node on another leaf pays
	// the trunk+spine route on every page fill, publication write-back, and
	// coherency-flag access — the cross-switch sharing cost.
	NodeLeaves []int
}

// SharingCluster is a multi-primary deployment (§3.3): N database nodes
// operate directly on a shared CXL distributed buffer pool managed by a
// buffer-fusion server, with cache coherency provided by the software
// invalid/removal-flag protocol.
type SharingCluster struct {
	topo   *cxl.Topology
	fusion *sharing.Fusion
	nodes  []*sharing.Node
	hosts  []*cxl.HostPort
	flags  []*simmem.Region
	store  *storage.Store
	clk    *simclock.Clock
}

// NewSharingCluster builds the deployment. Options wire observability and
// fault injection through the switch, its memory device, and the fusion
// server, same as NewCluster.
func NewSharingCluster(cfg SharingConfig, opts ...Option) (*SharingCluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("polarcxlmem: sharing cluster needs nodes > 0")
	}
	if cfg.DBPPages <= 0 {
		cfg.DBPPages = 256
	}
	if cfg.MetaSlots <= 0 {
		cfg.MetaSlots = 4096
	}
	var o clusterOptions
	for _, opt := range opts {
		opt(&o)
	}
	clk := simclock.New()
	flagBytes := int64(cfg.MetaSlots) * 16
	tc := cxl.TopologyConfig{}
	if cfg.Fabric != nil {
		tc = *cfg.Fabric
	}
	if tc.PoolBytes == 0 {
		tc.PoolBytes = int64(cfg.DBPPages)*page.Size + int64(cfg.Nodes+1)*flagBytes + 4096
	}
	topo := cxl.NewTopology(tc)
	if o.reg != nil {
		topo.SetObserver(o.reg)
	}
	if o.inj != nil {
		topo.SetInjector(o.inj)
		for i := 0; i < topo.Leaves(); i++ {
			topo.Leaf(i).Box().Device().SetInjector(o.inj)
		}
	}
	store := storage.New(storage.Config{})
	// The fusion server and all shared CXL state — the DBP and every node's
	// flag words — live on leaf 0's memory box; remote-leaf nodes reach them
	// over the trunk+spine route.
	fhost, err := topo.AttachHost("fusion-host", 0)
	if err != nil {
		return nil, err
	}
	dbp, err := fhost.Allocate(clk, "dbp", int64(cfg.DBPPages)*page.Size)
	if err != nil {
		return nil, err
	}
	fusion := sharing.NewFusion(fhost, dbp, store)
	if o.reg != nil {
		fusion.SetObserver(o.reg)
	}
	if o.inj != nil {
		fusion.SetInjector(o.inj)
	}
	sc := &SharingCluster{topo: topo, fusion: fusion, store: store, clk: clk}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		leaf := 0
		if i < len(cfg.NodeLeaves) {
			leaf = cfg.NodeLeaves[i]
		}
		host, err := topo.AttachHost(name, leaf)
		if err != nil {
			return nil, err
		}
		flags, err := host.AllocateOn(clk, 0, name+"-flags", flagBytes)
		if err != nil {
			return nil, err
		}
		node := sharing.NewNode(name, fusion, host.NewCache(name, 8<<20), flags)
		node.SetInterconnect(host.FabricPath())
		sc.nodes = append(sc.nodes, node)
		sc.hosts = append(sc.hosts, host)
		sc.flags = append(sc.flags, flags)
	}
	return sc, nil
}

// CrashPrimary kills node i: the fusion server marks it dead, so its lock
// leases stop renewing and its RPCs are rejected. Survivors keep serving;
// the dead node's locks are reclaimed by the first conflicting waiter after
// lease expiry, or immediately via Fusion().EvictNode.
func (s *SharingCluster) CrashPrimary(i int) error {
	if i < 0 || i >= len(s.nodes) {
		return fmt.Errorf("polarcxlmem: no node %d", i)
	}
	s.fusion.CrashNode(s.nodes[i].Name())
	return nil
}

// RejoinPrimary restarts crashed node i as a fresh node: the fusion server
// finishes evicting its old incarnation's state, then a new Node (empty
// cache, empty metadata buffer) takes its name.
func (s *SharingCluster) RejoinPrimary(i int) error {
	if i < 0 || i >= len(s.nodes) {
		return fmt.Errorf("polarcxlmem: no node %d", i)
	}
	name := s.nodes[i].Name()
	if err := s.fusion.RejoinNode(s.clk, name); err != nil {
		return err
	}
	node := sharing.NewNode(name, s.fusion, s.hosts[i].NewCache(name, 8<<20), s.flags[i])
	node.SetInterconnect(s.hosts[i].FabricPath())
	s.nodes[i] = node
	return nil
}

// Clock exposes the cluster's virtual clock.
func (s *SharingCluster) Clock() *simclock.Clock { return s.clk }

// Topology exposes the deployment's CXL fabric (per-tier stats, trunks).
func (s *SharingCluster) Topology() *cxl.Topology { return s.topo }

// Storage exposes the backing page store (seed shared pages here).
func (s *SharingCluster) Storage() *storage.Store { return s.store }

// Fusion exposes the buffer-fusion server.
func (s *SharingCluster) Fusion() *sharing.Fusion { return s.fusion }

// Node returns node i's record-level sharing API.
func (s *SharingCluster) Node(i int) *sharing.Node { return s.nodes[i] }

// Nodes reports the node count.
func (s *SharingCluster) Nodes() int { return len(s.nodes) }

// SeedPage writes a durable zero page and returns its id — a convenience
// for building shared datasets.
func (s *SharingCluster) SeedPage() (uint64, error) {
	id := s.store.AllocPageID()
	img := make([]byte, page.Size)
	if err := s.store.WritePage(s.clk, id, img); err != nil {
		return 0, err
	}
	return id, nil
}
