package polarcxlmem

import (
	"fmt"

	"polarcxlmem/internal/cxl"
	"polarcxlmem/internal/page"
	"polarcxlmem/internal/sharing"
	"polarcxlmem/internal/simclock"
	"polarcxlmem/internal/simmem"
	"polarcxlmem/internal/storage"
)

// SharingConfig sizes a multi-primary deployment.
type SharingConfig struct {
	Nodes    int // database nodes
	DBPPages int // distributed-buffer-pool frames in CXL
	// MetaSlots bounds each node's page-metadata buffer (default 4096).
	MetaSlots int
}

// SharingCluster is a multi-primary deployment (§3.3): N database nodes
// operate directly on a shared CXL distributed buffer pool managed by a
// buffer-fusion server, with cache coherency provided by the software
// invalid/removal-flag protocol.
type SharingCluster struct {
	sw     *cxl.Switch
	fusion *sharing.Fusion
	nodes  []*sharing.Node
	hosts  []*cxl.HostPort
	flags  []*simmem.Region
	store  *storage.Store
	clk    *simclock.Clock
}

// NewSharingCluster builds the deployment. Options wire observability and
// fault injection through the switch, its memory device, and the fusion
// server, same as NewCluster.
func NewSharingCluster(cfg SharingConfig, opts ...Option) (*SharingCluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("polarcxlmem: sharing cluster needs nodes > 0")
	}
	if cfg.DBPPages <= 0 {
		cfg.DBPPages = 256
	}
	if cfg.MetaSlots <= 0 {
		cfg.MetaSlots = 4096
	}
	var o clusterOptions
	for _, opt := range opts {
		opt(&o)
	}
	clk := simclock.New()
	flagBytes := int64(cfg.MetaSlots) * 16
	sw := cxl.NewSwitch(cxl.Config{
		PoolBytes: int64(cfg.DBPPages)*page.Size + int64(cfg.Nodes+1)*flagBytes + 4096,
	})
	if o.reg != nil {
		sw.SetObserver(o.reg)
	}
	if o.inj != nil {
		sw.SetInjector(o.inj)
		sw.Device().SetInjector(o.inj)
	}
	store := storage.New(storage.Config{})
	fhost := sw.AttachHost("fusion-host")
	dbp, err := fhost.Allocate(clk, "dbp", int64(cfg.DBPPages)*page.Size)
	if err != nil {
		return nil, err
	}
	fusion := sharing.NewFusion(fhost, dbp, store)
	if o.reg != nil {
		fusion.SetObserver(o.reg)
	}
	if o.inj != nil {
		fusion.SetInjector(o.inj)
	}
	sc := &SharingCluster{sw: sw, fusion: fusion, store: store, clk: clk}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node-%d", i)
		host := sw.AttachHost(name)
		flags, err := host.Allocate(clk, name+"-flags", flagBytes)
		if err != nil {
			return nil, err
		}
		sc.nodes = append(sc.nodes, sharing.NewNode(name, fusion, host.NewCache(name, 8<<20), flags))
		sc.hosts = append(sc.hosts, host)
		sc.flags = append(sc.flags, flags)
	}
	return sc, nil
}

// CrashPrimary kills node i: the fusion server marks it dead, so its lock
// leases stop renewing and its RPCs are rejected. Survivors keep serving;
// the dead node's locks are reclaimed by the first conflicting waiter after
// lease expiry, or immediately via Fusion().EvictNode.
func (s *SharingCluster) CrashPrimary(i int) error {
	if i < 0 || i >= len(s.nodes) {
		return fmt.Errorf("polarcxlmem: no node %d", i)
	}
	s.fusion.CrashNode(s.nodes[i].Name())
	return nil
}

// RejoinPrimary restarts crashed node i as a fresh node: the fusion server
// finishes evicting its old incarnation's state, then a new Node (empty
// cache, empty metadata buffer) takes its name.
func (s *SharingCluster) RejoinPrimary(i int) error {
	if i < 0 || i >= len(s.nodes) {
		return fmt.Errorf("polarcxlmem: no node %d", i)
	}
	name := s.nodes[i].Name()
	if err := s.fusion.RejoinNode(s.clk, name); err != nil {
		return err
	}
	s.nodes[i] = sharing.NewNode(name, s.fusion, s.hosts[i].NewCache(name, 8<<20), s.flags[i])
	return nil
}

// Clock exposes the cluster's virtual clock.
func (s *SharingCluster) Clock() *simclock.Clock { return s.clk }

// Storage exposes the backing page store (seed shared pages here).
func (s *SharingCluster) Storage() *storage.Store { return s.store }

// Fusion exposes the buffer-fusion server.
func (s *SharingCluster) Fusion() *sharing.Fusion { return s.fusion }

// Node returns node i's record-level sharing API.
func (s *SharingCluster) Node(i int) *sharing.Node { return s.nodes[i] }

// Nodes reports the node count.
func (s *SharingCluster) Nodes() int { return len(s.nodes) }

// SeedPage writes a durable zero page and returns its id — a convenience
// for building shared datasets.
func (s *SharingCluster) SeedPage() (uint64, error) {
	id := s.store.AllocPageID()
	img := make([]byte, page.Size)
	if err := s.store.WritePage(s.clk, id, img); err != nil {
		return 0, err
	}
	return id, nil
}
